package experiments

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/speedup"
)

func TestBuildModel(t *testing.T) {
	m, err := BuildModel(platform.Hera(), costmodel.Scenario1, 0.1, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Profile.(speedup.Amdahl); !ok {
		t.Error("α > 0 should select the Amdahl profile")
	}
	m0, err := BuildModel(platform.Hera(), costmodel.Scenario1, 0, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m0.Profile.(speedup.PerfectlyParallel); !ok {
		t.Error("α = 0 should select the perfectly parallel profile")
	}
	if _, err := BuildModel(platform.Platform{}, costmodel.Scenario1, 0.1, 0); err == nil {
		t.Error("invalid platform accepted")
	}
	if _, err := BuildModel(platform.Hera(), costmodel.Scenario(9), 0.1, 0); err == nil {
		t.Error("invalid scenario accepted")
	}
	if _, err := BuildModel(platform.Hera(), costmodel.Scenario1, -0.5, 0); err == nil {
		t.Error("invalid alpha accepted")
	}
}

func TestCellSeedStability(t *testing.T) {
	a := cellSeed(1, "fig2/Hera/scenario 1")
	b := cellSeed(1, "fig2/Hera/scenario 1")
	c := cellSeed(1, "fig2/Hera/scenario 2")
	d := cellSeed(2, "fig2/Hera/scenario 1")
	if a != b {
		t.Error("cell seed not stable")
	}
	if a == c || a == d {
		t.Error("cell seeds collide across labels or master seeds")
	}
}

func TestQuickConfig(t *testing.T) {
	q := Quick().withDefaults()
	full := Config{}.withDefaults()
	if q.Runs*q.Patterns >= full.Runs*full.Patterns/10 {
		t.Error("Quick config is not substantially cheaper than the default")
	}
	if full.Runs != 500 || full.Patterns != 500 || full.Downtime != 3600 || full.Alpha != 0.1 {
		t.Errorf("paper defaults wrong: %+v", full)
	}
}

// TestConfigZeroValueSentinels is the regression test for the zero-value
// footgun: Downtime: 0 and Alpha: 0 used to be silently rewritten to the
// paper defaults, making zero-downtime and perfectly-parallel studies
// impossible to configure.
func TestConfigZeroValueSentinels(t *testing.T) {
	zeroD := Config{DowntimeSet: true}.withDefaults()
	if zeroD.Downtime != 0 {
		t.Errorf("explicit zero downtime rewritten to %g", zeroD.Downtime)
	}
	zeroA := Config{AlphaSet: true}.withDefaults()
	if zeroA.Alpha != 0 {
		t.Errorf("explicit α = 0 rewritten to %g", zeroA.Alpha)
	}

	viaWith := Quick().WithDowntime(0).WithAlpha(0).withDefaults()
	if viaWith.Downtime != 0 || viaWith.Alpha != 0 {
		t.Errorf("WithDowntime(0)/WithAlpha(0) did not stick: %+v", viaWith)
	}
	if nonZero := Quick().WithDowntime(7200).withDefaults(); nonZero.Downtime != 7200 {
		t.Errorf("WithDowntime(7200) = %g", nonZero.Downtime)
	}

	// The unset path keeps the paper defaults.
	def := Config{}.withDefaults()
	if def.Downtime != 3600 || def.Alpha != 0.1 {
		t.Errorf("unset defaults changed: %+v", def)
	}

	// End to end: an α = 0 config must reach BuildModel as the perfectly
	// parallel profile, not as Amdahl(0.1).
	cfg := Quick().WithAlpha(0).withDefaults()
	m, err := BuildModel(platform.Hera(), costmodel.Scenario1, cfg.Alpha, cfg.Downtime)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Profile.(speedup.PerfectlyParallel); !ok {
		t.Errorf("α = 0 config selected %s, want perfectly-parallel", m.Profile.Name())
	}
}

func TestParallelFor(t *testing.T) {
	out := make([]int, 100)
	err := parallelFor(context.Background(), 100, 8, func(_ context.Context, i int) error {
		out[i] = i * i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("cell %d = %d", i, v)
		}
	}
}

// A cancelled context must abort the sweep with ctx.Err() and stop
// dispatching cells.
func TestParallelForCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := parallelFor(ctx, 1000, 4, func(_ context.Context, i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Errorf("all %d cells ran despite pre-cancelled context", n)
	}
}

// The first cell error must cancel the remaining cells (fail-fast at the
// sweep level) and surface as the returned error, without cancellation
// noise from the aborted siblings.
func TestParallelForFailFast(t *testing.T) {
	sentinel := errors.New("cell broke")
	var ran atomic.Int64
	err := parallelFor(context.Background(), 1000, 4, func(ctx context.Context, i int) error {
		ran.Add(1)
		if i == 0 {
			return sentinel
		}
		// Well-behaved cells notice the cancellation like a real campaign
		// (sim.SimulateContext) would.
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if errors.Is(err, context.Canceled) {
		t.Errorf("err %v contains cancellation noise from aborted cells", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Errorf("all %d cells ran despite cell-0 failure", n)
	}
}

// Fig. 2 on Hera (quick budget): the headline claims of the figure.
func TestFig2Hera(t *testing.T) {
	res, err := Fig2([]platform.Platform{platform.Hera()}, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 6 {
		t.Fatalf("expected 6 cells, got %d", len(res.Cells))
	}
	byScenario := map[costmodel.Scenario]Fig2Cell{}
	for _, c := range res.Cells {
		byScenario[c.Scenario] = c
		if c.Optimal == nil {
			t.Fatalf("%v: numerical optimum missing", c.Scenario)
		}
	}

	// Scenarios 1–5 have first-order solutions close to the optimum;
	// scenario 6 has none.
	for _, sc := range costmodel.AllScenarios {
		c := byScenario[sc]
		if sc == costmodel.Scenario6 {
			if c.FirstOrder != nil {
				t.Error("scenario 6 should have no first-order solution")
			}
			continue
		}
		if c.FirstOrder == nil {
			t.Fatalf("%v: first-order solution missing", sc)
		}
		// The paper: overheads ≈ 0.11 and first-order ≈ optimal in
		// scenarios 1–4; scenario 5 deviates by up to ~5%.
		tol := 0.05
		if sc == costmodel.Scenario5 {
			tol = 0.10
		}
		gap := math.Abs(c.FirstOrder.SimulatedH-c.Optimal.SimulatedH) / c.Optimal.SimulatedH
		if gap > tol {
			t.Errorf("%v: first-order vs optimal simulated overhead gap %.3f", sc, gap)
		}
		if c.FirstOrder.SimulatedH < 0.10 || c.FirstOrder.SimulatedH > 0.135 {
			t.Errorf("%v: simulated overhead %g outside the ≈0.11 band",
				sc, c.FirstOrder.SimulatedH)
		}
		// Simulation agrees with the model prediction.
		if diff := math.Abs(c.FirstOrder.SimulatedH - c.FirstOrder.PredictedH); diff > 6*c.FirstOrder.SimCI+1e-3 {
			t.Errorf("%v: simulated %g vs predicted %g beyond CI", sc,
				c.FirstOrder.SimulatedH, c.FirstOrder.PredictedH)
		}
	}

	// Scenario ordering of P*: constant-cost scenarios enroll more
	// processors than linear-cost ones; scenario 6 the most.
	if !(byScenario[costmodel.Scenario3].Optimal.P > byScenario[costmodel.Scenario1].Optimal.P) {
		t.Error("P*(sc3) should exceed P*(sc1)")
	}
	if !(byScenario[costmodel.Scenario6].Optimal.P > byScenario[costmodel.Scenario5].Optimal.P) {
		t.Error("P*(sc6) should exceed P*(sc5)")
	}
	// And T* ordering is reversed for 5 vs 6.
	if !(byScenario[costmodel.Scenario6].Optimal.T < byScenario[costmodel.Scenario5].Optimal.T) {
		t.Error("T*(sc6) should be below T*(sc5)")
	}
}

func TestFig2RenderAndCSV(t *testing.T) {
	res, err := Fig2([]platform.Platform{platform.Hera()}, Quick())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"Fig. 2", "Hera", "scenario 1", "scenario 6", "P* (optimal)"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q", frag)
		}
	}
	var csvBuf bytes.Buffer
	if err := res.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csvBuf.String(), "pstar_optimal") {
		t.Error("CSV missing series")
	}
}

// Fig. 3 on Hera (quick): periods fall with P, the first-order gap to the
// per-P numerical optimum stays within a fraction of a percent.
func TestFig3Hera(t *testing.T) {
	procs := []float64{256, 512, 1024}
	res, err := Fig3(platform.Hera(), procs, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6*len(procs) {
		t.Fatalf("expected %d points, got %d", 6*len(procs), len(res.Points))
	}
	// Periods decrease with P in every scenario (Fig. 3(a)).
	periods := map[costmodel.Scenario][]float64{}
	for _, pt := range res.Points {
		periods[pt.Scenario] = append(periods[pt.Scenario], pt.PeriodFO)
	}
	for sc, ts := range periods {
		for i := 1; i < len(ts); i++ {
			if ts[i] >= ts[i-1] {
				t.Errorf("%v: period did not decrease with P: %v", sc, ts)
			}
		}
	}
	// The overhead gap to the numerical optimum stays within 0.2%
	// (the paper's Fig. 3(c) bound for this processor range).
	for _, pt := range res.Points {
		if d := pt.DiffPercent(); d < -1e-9 || d > 0.2 {
			t.Errorf("%v P=%g: first-order gap %.4f%% outside [0, 0.2%%]",
				pt.Scenario, pt.P, d)
		}
	}
	// Scenarios sharing the same C_P form behave alike (sc1≈sc2).
	var p1, p2 float64
	for _, pt := range res.Points {
		if pt.P == 512 {
			switch pt.Scenario {
			case costmodel.Scenario1:
				p1 = pt.PeriodFO
			case costmodel.Scenario2:
				p2 = pt.PeriodFO
			}
		}
	}
	if math.Abs(p1-p2)/p1 > 0.05 {
		t.Errorf("sc1 and sc2 periods at P=512 should nearly overlap: %g vs %g", p1, p2)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig. 3(c)") {
		t.Error("render missing panel (c)")
	}
	var csvBuf bytes.Buffer
	if err := res.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csvBuf.String(), "diff_pct/scenario 6") {
		t.Error("CSV missing diff series")
	}
}

// Fig. 4 (quick): smaller α enrolls more processors and lowers overhead.
func TestFig4Hera(t *testing.T) {
	alphas := []float64{0, 1e-3, 1e-1}
	res, err := Fig4(platform.Hera(), alphas, Quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range []costmodel.Scenario{costmodel.Scenario1, costmodel.Scenario3} {
		var ps, hs []float64
		for _, a := range alphas {
			for _, pt := range res.Points {
				if pt.Scenario == sc && pt.X == a && pt.Optimal != nil {
					ps = append(ps, pt.Optimal.P)
					hs = append(hs, pt.Optimal.SimulatedH)
				}
			}
		}
		if len(ps) != 3 {
			t.Fatalf("%v: missing optimal evals", sc)
		}
		// α increasing: P* decreasing, overhead increasing.
		if !(ps[0] > ps[1] && ps[1] > ps[2]) {
			t.Errorf("%v: P* not decreasing in α: %v", sc, ps)
		}
		if !(hs[0] < hs[1] && hs[1] < hs[2]) {
			t.Errorf("%v: overhead not increasing in α: %v", sc, hs)
		}
	}
	// α = 0 rows must have no first-order solution.
	for _, pt := range res.Points {
		if pt.X == 0 && pt.FirstOrder != nil {
			t.Error("α = 0 should have no first-order solution")
		}
		if pt.X == 0.1 && pt.Scenario != costmodel.Scenario6 && pt.FirstOrder == nil {
			t.Errorf("%v at α=0.1 should have a first-order solution", pt.Scenario)
		}
	}
}

// Fig. 5 (quick): the asymptotic orders of Theorems 2 and 3, recovered
// from the numerical optima by log-log regression.
func TestFig5AsymptoticOrders(t *testing.T) {
	lambdas := []float64{1e-12, 1e-11, 1e-10, 1e-9, 1e-8}
	res, err := Fig5(platform.Hera(), lambdas, Quick())
	if err != nil {
		t.Fatal(err)
	}
	slopes := res.Slopes()

	s1 := slopes[costmodel.Scenario1]
	if math.Abs(s1.P-(-0.25)) > 0.06 {
		t.Errorf("scenario 1: P* slope %.3f, want ≈ −1/4", s1.P)
	}
	if math.Abs(s1.T-(-0.5)) > 0.06 {
		t.Errorf("scenario 1: T* slope %.3f, want ≈ −1/2", s1.T)
	}
	s3 := slopes[costmodel.Scenario3]
	if math.Abs(s3.P-(-1.0/3)) > 0.06 {
		t.Errorf("scenario 3: P* slope %.3f, want ≈ −1/3", s3.P)
	}
	if math.Abs(s3.T-(-1.0/3)) > 0.06 {
		t.Errorf("scenario 3: T* slope %.3f, want ≈ −1/3", s3.T)
	}
	// Overheads tend to the α = 0.1 floor as λ shrinks.
	for _, pt := range res.Points {
		if pt.X == 1e-12 && pt.Optimal != nil {
			if pt.Optimal.SimulatedH > 0.102 || pt.Optimal.SimulatedH < 0.0999 {
				t.Errorf("%v at λ=1e-12: overhead %g should approach 0.1",
					pt.Scenario, pt.Optimal.SimulatedH)
			}
		}
	}
	// First-order accuracy improves as λ decreases: the P* gap at the
	// smallest λ is tighter than at the largest.
	gap := func(lambda float64, sc costmodel.Scenario) float64 {
		for _, pt := range res.Points {
			if pt.X == lambda && pt.Scenario == sc && pt.FirstOrder != nil && pt.Optimal != nil {
				return math.Abs(pt.FirstOrder.P-pt.Optimal.P) / pt.Optimal.P
			}
		}
		return math.NaN()
	}
	if g12, g8 := gap(1e-12, costmodel.Scenario3), gap(1e-8, costmodel.Scenario3); !(g12 <= g8+0.02) {
		t.Errorf("first-order P* gap should shrink with λ: %g (1e-12) vs %g (1e-8)", g12, g8)
	}
}

// Fig. 6 (quick): perfectly parallel orders from the numerical solution.
func TestFig6PerfectlyParallelOrders(t *testing.T) {
	lambdas := []float64{1e-12, 1e-11, 1e-10, 1e-9, 1e-8}
	res, err := Fig6(platform.Hera(), lambdas, Quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range res.Points {
		if pt.FirstOrder != nil {
			t.Fatal("α = 0 must not produce first-order solutions")
		}
	}
	slopes := res.Slopes()
	s1 := slopes[costmodel.Scenario1]
	if math.Abs(s1.P-(-0.5)) > 0.1 {
		t.Errorf("scenario 1: P* slope %.3f, want ≈ −1/2", s1.P)
	}
	if math.Abs(s1.H-0.5) > 0.1 {
		t.Errorf("scenario 1: H slope %.3f, want ≈ +1/2", s1.H)
	}
	s3 := slopes[costmodel.Scenario3]
	if math.Abs(s3.P-(-1)) > 0.15 {
		t.Errorf("scenario 3: P* slope %.3f, want ≈ −1", s3.P)
	}
	if math.Abs(s3.H-1) > 0.15 {
		t.Errorf("scenario 3: H slope %.3f, want ≈ +1", s3.H)
	}
	// T* = O(1) for scenario 3: slope near zero.
	if math.Abs(s3.T) > 0.15 {
		t.Errorf("scenario 3: T* slope %.3f, want ≈ 0", s3.T)
	}
}

// Fig. 7 (quick): numerical P* decreases with downtime; first-order P*
// is constant; overheads stay close.
func TestFig7DowntimeImpact(t *testing.T) {
	ds := []float64{0, 3600, 10800}
	res, err := Fig7(platform.Hera(), ds, Quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scenarios135 {
		var foPs, numPs, foH, numH []float64
		for _, d := range ds {
			for _, pt := range res.Points {
				if pt.Scenario != sc || pt.X != d {
					continue
				}
				if pt.FirstOrder != nil {
					foPs = append(foPs, pt.FirstOrder.P)
					foH = append(foH, pt.FirstOrder.SimulatedH)
				}
				if pt.Optimal != nil {
					numPs = append(numPs, pt.Optimal.P)
					numH = append(numH, pt.Optimal.SimulatedH)
				}
			}
		}
		if len(foPs) != 3 || len(numPs) != 3 {
			t.Fatalf("%v: missing evals", sc)
		}
		if foPs[0] != foPs[1] || foPs[1] != foPs[2] {
			t.Errorf("%v: first-order P* should ignore D: %v", sc, foPs)
		}
		if !(numPs[0] > numPs[2]) {
			t.Errorf("%v: numerical P* should decrease with D: %v", sc, numPs)
		}
		// Simulated overheads of the two solutions stay close across the
		// D range. Scenario 5 is the one the paper flags as hard for the
		// first-order analysis (the dropped b/P term is 15× the constant
		// d at P*), so it gets a wider band.
		tol := 0.02
		if sc == costmodel.Scenario5 {
			tol = 0.15
		}
		for i := range foH {
			if math.Abs(foH[i]-numH[i])/numH[i] > tol {
				t.Errorf("%v D=%g: overhead divergence fo=%g num=%g",
					sc, ds[i], foH[i], numH[i])
			}
		}
	}
}

func TestSweepRenderAndCSV(t *testing.T) {
	res, err := Fig7(platform.Hera(), []float64{0, 3600}, Quick())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"Fig. 7(a)", "Fig. 7(b)", "Fig. 7(c)", "sc1 first-order"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q", frag)
		}
	}
	var csvBuf bytes.Buffer
	if err := res.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"pstar/scenario 1 (optimal)", "overhead/scenario 5 (first-order)"} {
		if !strings.Contains(csvBuf.String(), frag) {
			t.Errorf("CSV missing %q", frag)
		}
	}
}
