package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/platform"
)

// TestSeedHashMatchesSprintfLabels pins the streaming seedHash against
// the historical cellSeed-over-fmt.Sprintf path: the sweep hot loop
// derives per-cell seeds without materializing the label, and the digest
// must be bit-identical or every figure's Monte-Carlo streams change.
func TestSeedHashMatchesSprintfLabels(t *testing.T) {
	const master = 12345
	for _, sc := range costmodel.AllScenarios {
		for _, x := range []float64{0, 1e-12, 0.1, 3600, 1.69e-8, 1472, 1e300} {
			for _, suffix := range []string{"/first-order", "/numerical"} {
				label := fmt.Sprintf("%s/%v/%s=%g%s", "Fig. 5", sc, "lambda_ind", x, suffix)
				want := cellSeed(master, label)
				got := newSeedHash().str("Fig. 5").str("/").str(sc.String()).
					str("/").str("lambda_ind").str("=").float(x).str(suffix).seed(master)
				if got != want {
					t.Fatalf("seedHash(%q) = %d, want %d", label, got, want)
				}
			}
		}
	}
}

// TestSweepWarmColdRenderByteIdentical is the figure-level equivalence
// pin: a warm-start sweep and the historical cold per-cell sweep must
// render byte-identical tables for the same seed (the solver agreement
// is within the refinement tolerance, far below the table precision).
func TestSweepWarmColdRenderByteIdentical(t *testing.T) {
	cfg := Quick()
	cfg.Seed = 7
	run := func(cold bool) (string, *SweepResult) {
		c := cfg
		c.ColdSolve = cold
		res, err := Fig4(platform.Hera(), nil, c)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String(), res
	}
	warmOut, warmRes := run(false)
	coldOut, coldRes := run(true)
	if warmOut != coldOut {
		t.Errorf("warm and cold Fig. 4 renders differ:\n--- warm ---\n%s\n--- cold ---\n%s", warmOut, coldOut)
	}
	for i := range coldRes.Points {
		w, c := warmRes.Points[i].Optimal, coldRes.Points[i].Optimal
		if (w == nil) != (c == nil) {
			t.Fatalf("point %d: optimal presence differs", i)
		}
		if relDiff(w.P, c.P) > 1e-4 || relDiff(w.T, c.T) > 1e-4 {
			t.Errorf("point %d: warm optimum (%g, %g) vs cold (%g, %g)", i, w.T, w.P, c.T, c.P)
		}
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	if m == 0 {
		return 0
	}
	return d / m
}
