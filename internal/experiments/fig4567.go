package experiments

import (
	"context"

	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/xmath"
)

// DefaultFig4Alphas mirrors the paper's x-axis: α ∈ {0, 1e-4, 1e-3,
// 1e-2, 1e-1}. α = 0 switches to the perfectly parallel profile, for
// which only the numerical solution exists.
func DefaultFig4Alphas() []float64 {
	return []float64{0, 1e-4, 1e-3, 1e-2, 1e-1}
}

// Fig4 reproduces Fig. 4: the impact of the sequential fraction α on
// P*, T* and the simulated overhead for scenarios 1, 3 and 5.
func Fig4(pl platform.Platform, alphas []float64, cfg Config) (*SweepResult, error) {
	return Fig4Context(context.Background(), pl, alphas, cfg)
}

// Fig4Context is Fig4 with cancellation.
func Fig4Context(ctx context.Context, pl platform.Platform, alphas []float64, cfg Config) (*SweepResult, error) {
	if len(alphas) == 0 {
		alphas = DefaultFig4Alphas()
	}
	cfg = cfg.withDefaults()
	build := func(alpha float64, sc costmodel.Scenario) (core.Model, error) {
		return BuildModel(pl, sc, alpha, cfg.Downtime)
	}
	return runSweep(ctx, "Fig. 4", "alpha", alphas, build, cfg)
}

// DefaultLambdas mirrors the λ_ind axis of Figs. 5 and 6: 1e-12 … 1e-8.
func DefaultLambdas() []float64 {
	return xmath.Logspace(1e-12, 1e-8, 9)
}

// Fig5 reproduces Fig. 5: the impact of the individual error rate λ_ind
// at α = cfg.Alpha (0.1 in the paper). The asymptotic orders of Theorems
// 2 and 3 — P* = Θ(λ^-1/4) / Θ(λ^-1/3), T* = Θ(λ^-1/2) / Θ(λ^-1/3) —
// are recovered from the result by SweepResult.Slopes.
func Fig5(pl platform.Platform, lambdas []float64, cfg Config) (*SweepResult, error) {
	return Fig5Context(context.Background(), pl, lambdas, cfg)
}

// Fig5Context is Fig5 with cancellation.
func Fig5Context(ctx context.Context, pl platform.Platform, lambdas []float64, cfg Config) (*SweepResult, error) {
	if len(lambdas) == 0 {
		lambdas = DefaultLambdas()
	}
	cfg = cfg.withDefaults()
	build := func(lambda float64, sc costmodel.Scenario) (core.Model, error) {
		return BuildModel(pl.WithLambda(lambda), sc, cfg.Alpha, cfg.Downtime)
	}
	return runSweep(ctx, "Fig. 5", "lambda_ind", lambdas, build, cfg)
}

// Fig6 reproduces Fig. 6: the same λ_ind sweep with a perfectly parallel
// application (α = 0), where no first-order solution exists and the paper
// reports numerical orders P* ≈ λ^-1/2 (scenario 1) and ≈ λ^-1
// (scenarios 3 and 5).
func Fig6(pl platform.Platform, lambdas []float64, cfg Config) (*SweepResult, error) {
	return Fig6Context(context.Background(), pl, lambdas, cfg)
}

// Fig6Context is Fig6 with cancellation.
func Fig6Context(ctx context.Context, pl platform.Platform, lambdas []float64, cfg Config) (*SweepResult, error) {
	if len(lambdas) == 0 {
		lambdas = DefaultLambdas()
	}
	cfg = cfg.withDefaults()
	build := func(lambda float64, sc costmodel.Scenario) (core.Model, error) {
		return BuildModel(pl.WithLambda(lambda), sc, 0, cfg.Downtime)
	}
	return runSweep(ctx, "Fig. 6", "lambda_ind", lambdas, build, cfg)
}

// DefaultFig7Downtimes mirrors the paper's x-axis: 0 to 3 hours.
func DefaultFig7Downtimes() []float64 {
	return []float64{0, 1800, 3600, 5400, 7200, 9000, 10800}
}

// Fig7 reproduces Fig. 7: the impact of the downtime D at α = cfg.Alpha.
// The first-order pattern is D-independent (D is a lower-order term);
// the numerical P* decreases as D grows.
func Fig7(pl platform.Platform, downtimes []float64, cfg Config) (*SweepResult, error) {
	return Fig7Context(context.Background(), pl, downtimes, cfg)
}

// Fig7Context is Fig7 with cancellation.
func Fig7Context(ctx context.Context, pl platform.Platform, downtimes []float64, cfg Config) (*SweepResult, error) {
	if len(downtimes) == 0 {
		downtimes = DefaultFig7Downtimes()
	}
	cfg = cfg.withDefaults()
	build := func(d float64, sc costmodel.Scenario) (core.Model, error) {
		return BuildModel(pl, sc, cfg.Alpha, d)
	}
	return runSweep(ctx, "Fig. 7", "D", downtimes, build, cfg)
}
