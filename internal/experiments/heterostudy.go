package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"

	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/hetero"
	"amdahlyd/internal/optimize"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/report"
	"amdahlyd/internal/sim"
)

// HeteroCell is one (scenario, comm, split) cell of the heterogeneous
// study: the joint optimum over active set, work split and per-group
// patterns, its model prediction and Monte-Carlo price, against the
// CPU-only single-group optimum of the same scenario.
type HeteroCell struct {
	Scenario costmodel.Scenario
	// Comm is the topology's inter-group communication coefficient κ.
	Comm float64
	// Split sizes the accelerator group as Split·(CPU size).
	Split float64
	// Active is the optimal active group count.
	Active int
	// CPUP and AccelP are the per-group allocations (NaN when the group
	// is inactive).
	CPUP, AccelP float64
	// AccelFrac is the accelerator's work share x_accel (0 when inactive).
	AccelFrac float64
	// PredictedH is the combined model overhead H = 1/Σ 1/A_g.
	PredictedH float64
	// SimulatedH is the Monte-Carlo mean makespan overhead with CI95
	// half-width SimCI (NaN when the cell is unsimulable).
	SimulatedH, SimCI float64
	// SingleH is the simulated overhead of the CPU-only baseline.
	SingleH float64
	// SavingPct is the relative overhead reduction of the simulated
	// heterogeneous optimum over the CPU-only baseline, in percent.
	SavingPct float64
	// Warm reports that the cell was solved in the warm bracket of its
	// comm-axis neighbour.
	Warm bool
}

// HeteroResult is the full study: scenarios × comm terms × group splits
// on one CPU platform plus its derived accelerator group.
type HeteroResult struct {
	Platform string
	Cells    []HeteroCell
	Cfg      Config
}

// DefaultHeteroComms is the communication axis of the study, from free
// cooperation to a comm bill that dominates the parallel gain.
var DefaultHeteroComms = []float64{0, 1e-6, 3e-6, 1e-5, 3e-5, 1e-4}

// DefaultHeteroSplits is the accelerator-size axis: the accelerator group
// holds Split·(CPU size) processors.
var DefaultHeteroSplits = []float64{0.0625, 0.25, 1}

// HeteroStudyTopology derives the study's two-group topology from a CPU
// platform: the platform itself as the baseline group, plus an
// accelerator group that is 8× faster and 50× less reliable per
// processor, with a cheaper checkpoint (smaller device memory: C/5, V/4),
// sized at split·(CPU size).
func HeteroStudyTopology(pl platform.Platform, comm, split float64) platform.Topology {
	size := math.Round(split * pl.Processors)
	if size < 1 {
		size = 1
	}
	return platform.Topology{
		Name: pl.Name + "+accel",
		Comm: comm,
		Groups: []platform.Group{
			{Name: "cpu", LambdaInd: pl.LambdaInd, FailStopFraction: pl.FailStopFraction,
				SilentFraction: pl.SilentFraction, Size: pl.Processors, Speed: 1,
				CheckpointCost: pl.CheckpointCost, VerificationCost: pl.VerificationCost},
			{Name: "accel", LambdaInd: 50 * pl.LambdaInd, FailStopFraction: pl.FailStopFraction,
				SilentFraction: pl.SilentFraction, Size: size, Speed: 8,
				CheckpointCost: pl.CheckpointCost / 5, VerificationCost: pl.VerificationCost / 4},
		},
	}
}

// HeterogeneousStudy runs the topology-aware heterogeneous platform
// study: for each scenario, inter-group comm term and accelerator split,
// the joint optimum — which groups work, how the load divides, what
// pattern each group runs — priced by Monte-Carlo and compared with the
// CPU-only single-group optimum. nil comms and splits select the default
// axes; scenarios defaults to 1, 3 and 5 as in the sweep figures.
func HeterogeneousStudy(pl platform.Platform, comms, splits []float64,
	scenarios []costmodel.Scenario, cfg Config) (*HeteroResult, error) {
	return HeterogeneousStudyContext(context.Background(), pl, comms, splits, scenarios, cfg)
}

// HeterogeneousStudyContext is HeterogeneousStudy with cancellation. It
// runs the two-phase sweep shape: phase 1 solves the joint optima as one
// hetero.SweepSolver chain per (scenario, split) along the comm axis
// (cfg.ColdSolve restores per-cell full-box scans) plus one CPU-only
// baseline solve per scenario, phase 2 prices every cell by Monte-Carlo
// in parallel with per-cell seeds derived from the streaming label hash.
func HeterogeneousStudyContext(ctx context.Context, pl platform.Platform, comms, splits []float64,
	scenarios []costmodel.Scenario, cfg Config) (*HeteroResult, error) {
	cfg = cfg.withDefaults()
	if len(comms) == 0 {
		comms = DefaultHeteroComms
	}
	if len(splits) == 0 {
		splits = DefaultHeteroSplits
	}
	if len(scenarios) == 0 {
		scenarios = scenarios135
	}

	// Phase 1a: the CPU-only baseline, one single-group solve per scenario
	// through the same hetero path (degenerate by construction, so the
	// baseline is exactly the classical numerical optimum).
	baseModels := make([]core.HeteroModel, len(scenarios))
	basePlans := make([]hetero.PatternResult, len(scenarios))
	for si, sc := range scenarios {
		//lint:allow frozenloop one baseline compile per scenario; the optimizer runs on the compiled model
		hm, err := hetero.CompileTopology(platform.SingleGroup(pl), sc, cfg.Alpha, cfg.Downtime)
		if err != nil {
			return nil, fmt.Errorf("experiments: hetero/%s/%v baseline: %w", pl.Name, sc, err)
		}
		res, err := hetero.OptimalPattern(hm, hetero.PatternOptions{
			PatternOptions: singleIntegerOpts(),
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: hetero/%s/%v baseline: %w", pl.Name, sc, err)
		}
		baseModels[si], basePlans[si] = hm, res
	}

	// Phase 1b: one warm chain per (scenario, split) along the comm axis.
	// IntegerP keeps the joint optimum on integral allocations, so warm
	// and cold chains land on bit-identical cells and the phase-2
	// campaigns replay bit-identically across -warm modes.
	nSc, nSp, nCo := len(scenarios), len(splits), len(comms)
	nCells := nSc * nSp * nCo
	cells := make([]HeteroCell, nCells)
	models := make([]core.HeteroModel, nCells)
	plans := make([]hetero.PatternResult, nCells)
	swOpts := hetero.SweepOptions{
		PatternOptions: hetero.PatternOptions{PatternOptions: singleIntegerOpts()},
		Cold:           cfg.ColdSolve,
	}
	err := parallelFor(ctx, nSc*nSp, cfg.Workers, func(ctx context.Context, j int) error {
		si, pi := j/nSp, j%nSp
		sc := scenarios[si]
		solver := hetero.NewSweepSolver(swOpts)
		for ci, comm := range comms {
			if err := ctx.Err(); err != nil {
				return err
			}
			tp := HeteroStudyTopology(pl, comm, splits[pi])
			//lint:allow frozenloop one compile per (scenario, split, comm) cell, each a distinct topology
			hm, err := hetero.CompileTopology(tp, sc, cfg.Alpha, cfg.Downtime)
			if err != nil {
				return fmt.Errorf("experiments: hetero/%s/%v/split=%g/comm=%g: %w",
					pl.Name, sc, splits[pi], comm, err)
			}
			res, err := solver.Solve(hm)
			if err != nil {
				return fmt.Errorf("experiments: hetero/%s/%v/split=%g/comm=%g: %w",
					pl.Name, sc, splits[pi], comm, err)
			}
			if res, err = canonicalizePlan(hm, res); err != nil {
				return fmt.Errorf("experiments: hetero/%s/%v/split=%g/comm=%g: %w",
					pl.Name, sc, splits[pi], comm, err)
			}
			i := (si*nSp+pi)*nCo + ci
			models[i], plans[i] = hm, res
			cell := HeteroCell{
				Scenario:   sc,
				Comm:       comm,
				Split:      splits[pi],
				Active:     res.Active,
				CPUP:       math.NaN(),
				AccelP:     math.NaN(),
				PredictedH: res.Overhead,
				Warm:       res.Warm,
			}
			for _, gp := range res.Groups {
				switch gp.Group {
				case 0:
					cell.CPUP = gp.P
				case 1:
					cell.AccelP = gp.P
					cell.AccelFrac = gp.Fraction
				}
			}
			cells[i] = cell
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: all Monte-Carlo campaigns in parallel — one heterogeneous
	// campaign per cell plus one CPU-only baseline per scenario (appended
	// after the cells in the job index space).
	singleH := make([]float64, len(scenarios))
	err = parallelFor(ctx, nCells+nSc, cfg.Workers, func(ctx context.Context, i int) error {
		if i >= nCells {
			si := i - nCells
			sc := scenarios[si]
			plan := basePlans[si].Groups[0]
			seed := newSeedHash().str("hetero/").str(pl.Name).str("/").str(sc.String()).
				str("/cpu-only").seed(cfg.Seed)
			ev, err := simulateEvalSeed(ctx, baseModels[si].Groups[0].Model,
				solutionAt(plan.T, plan.P), false, cfg, seed,
				func() string { return fmt.Sprintf("hetero/%s/%v/cpu-only", pl.Name, sc) })
			if err != nil {
				return err
			}
			singleH[si] = ev.SimulatedH
			return nil
		}
		cell := &cells[i]
		groups, err := heteroRunPlan(models[i], plans[i])
		if err != nil {
			return err
		}
		seed := newSeedHash().str("hetero/").str(pl.Name).str("/").str(cell.Scenario.String()).
			str("/split=").float(cell.Split).str("/comm=").float(cell.Comm).seed(cfg.Seed)
		res, err := sim.SimulateHeteroContext(ctx, groups, sim.RunConfig{
			Runs:     cfg.Runs,
			Patterns: cfg.Patterns,
			Seed:     seed,
			Workers:  1, // parallelism lives at the cell level
		})
		if errors.Is(err, sim.ErrErrorPressure) {
			cell.SimulatedH, cell.SimCI = math.NaN(), math.NaN()
			return nil
		}
		if err != nil {
			return fmt.Errorf("experiments: simulating hetero/%s/%v/split=%g/comm=%g: %w",
				pl.Name, cell.Scenario, cell.Split, cell.Comm, err)
		}
		cell.SimulatedH, cell.SimCI = res.Overhead.Mean, res.Overhead.CI95
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Join the baseline into every cell of its scenario.
	for i := range cells {
		si := i / (nSp * nCo)
		cells[i].SingleH = singleH[si]
		cells[i].SavingPct = (1 - cells[i].SimulatedH/singleH[si]) * 100
	}
	return &HeteroResult{Platform: pl.Name, Cells: cells, Cfg: cfg}, nil
}

// singleIntegerOpts is the per-group search box shared by the study's
// baseline and heterogeneous solves: integral allocations, so warm and
// cold chains land on bit-identical cells.
func singleIntegerOpts() optimize.PatternOptions {
	return optimize.PatternOptions{IntegerP: true}
}

// canonicalizePlan re-solves each active group's period at its chosen
// integral allocation with the reference inner minimizer
// (optimize.OptimalPeriod) and reassembles the harmonic combination in
// hetero's arithmetic order. On a cold solve this is a bit-identical
// no-op (the cold path's inner probe is the same minimizer); on a warm
// solve it snaps the Brent-polished period onto the reference answer, so
// warm and cold studies land on bit-identical cells and the phase-2
// campaigns replay bit-identically across -warm modes.
func canonicalizePlan(hm core.HeteroModel, res hetero.PatternResult) (hetero.PatternResult, error) {
	inv := 0.0
	for i := range res.Groups {
		gp := &res.Groups[i]
		m, err := hm.ActiveModel(gp.Group, res.Active)
		if err != nil {
			return hetero.PatternResult{}, err
		}
		t, h, err := optimize.OptimalPeriod(m, gp.P, singleIntegerOpts())
		if err != nil {
			return hetero.PatternResult{}, err
		}
		gp.T, gp.GroupOverhead = t, h
		inv += 1 / h
	}
	if res.Active == 1 {
		// The degenerate case passes the overhead through untouched, as in
		// hetero's assemble: the 1/(1/A) round trip is not bit-exact.
		res.Overhead = res.Groups[0].GroupOverhead
		res.Groups[0].Fraction = 1
		return res, nil
	}
	res.Overhead = 1 / inv
	for i := range res.Groups {
		res.Groups[i].Fraction = res.Overhead / res.Groups[i].GroupOverhead
	}
	return res, nil
}

// heteroRunPlan lowers an optimizer plan to the sim layer: one
// comm-charged model + pattern + fraction per active group.
func heteroRunPlan(hm core.HeteroModel, res hetero.PatternResult) ([]sim.HeteroGroupRun, error) {
	groups := make([]sim.HeteroGroupRun, len(res.Groups))
	for i, gp := range res.Groups {
		m, err := hm.ActiveModel(gp.Group, res.Active)
		if err != nil {
			return nil, err
		}
		groups[i] = sim.HeteroGroupRun{Model: m, T: gp.T, P: gp.P, Fraction: gp.Fraction}
	}
	return groups, nil
}

// Render writes the study as one table: the joint heterogeneous optimum
// and price per (scenario, split, comm), against the CPU-only optimum.
func (r *HeteroResult) Render(w io.Writer) error {
	tb := report.NewTable(
		fmt.Sprintf("Heterogeneous study on %s — joint (groups, split, T, P) optimum vs CPU-only, α=%g, D=%gs",
			r.Platform, r.Cfg.Alpha, r.Cfg.Downtime),
		"scenario", "split", "κ", "G", "P cpu", "P accel", "x accel",
		"H pred", "H sim", "H sim (cpu)", "saving")
	for _, c := range r.Cells {
		saving := "-"
		if !math.IsNaN(c.SavingPct) {
			saving = fmt.Sprintf("%+.2f%%", c.SavingPct)
		}
		if err := tb.AddRow(c.Scenario.String(),
			report.Fmt(c.Split),
			report.Fmt(c.Comm),
			fmt.Sprintf("%d", c.Active),
			report.Fmt(c.CPUP),
			report.Fmt(c.AccelP),
			report.Fmt(c.AccelFrac),
			report.Fmt(c.PredictedH),
			report.Fmt(c.SimulatedH),
			report.Fmt(c.SingleH),
			saving); err != nil {
			return err
		}
	}
	if err := tb.Render(w); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// WriteCSV emits the study in long form, one series per quantity, x =
// cell index in (scenario-major, split, comm-minor) order.
func (r *HeteroResult) WriteCSV(w io.Writer) error {
	var series []report.Series
	add := func(name string, get func(HeteroCell) float64) {
		s := report.Series{Name: name}
		for i, c := range r.Cells {
			s.Add(float64(i), get(c))
		}
		series = append(series, s)
	}
	add("scenario", func(c HeteroCell) float64 { return float64(c.Scenario) })
	add("split", func(c HeteroCell) float64 { return c.Split })
	add("comm", func(c HeteroCell) float64 { return c.Comm })
	add("active", func(c HeteroCell) float64 { return float64(c.Active) })
	add("p_cpu", func(c HeteroCell) float64 { return c.CPUP })
	add("p_accel", func(c HeteroCell) float64 { return c.AccelP })
	add("x_accel", func(c HeteroCell) float64 { return c.AccelFrac })
	add("overhead_pred", func(c HeteroCell) float64 { return c.PredictedH })
	add("overhead_sim", func(c HeteroCell) float64 { return c.SimulatedH })
	add("overhead_sim_cpu", func(c HeteroCell) float64 { return c.SingleH })
	add("saving_pct", func(c HeteroCell) float64 { return c.SavingPct })
	return report.WriteSeriesCSV(w, "cell_index", "value", series...)
}
