package experiments

import (
	"context"
	"fmt"
	"io"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/optimize"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/report"
)

// Fig3Point is one (scenario, P) cell of Fig. 3.
type Fig3Point struct {
	Scenario costmodel.Scenario
	P        float64
	// PeriodFO is Theorem 1's first-order T*_P (panel a).
	PeriodFO float64
	// SimOverheadFO is the simulated overhead at (T*_P, P) (panel b).
	SimOverheadFO float64
	SimCI         float64
	// PeriodNum and the exact overheads feed panel (c): the gap between
	// the first-order period and the true optimal period for this P.
	PeriodNum  float64
	OverheadFO float64 // exact model at (PeriodFO, P)
	OverheadN  float64 // exact model at (PeriodNum, P)
}

// DiffPercent returns panel (c): the overhead excess of the first-order
// period over the numerically optimal period, in percent.
func (p Fig3Point) DiffPercent() float64 {
	return (p.OverheadFO - p.OverheadN) / p.OverheadN * 100
}

// Fig3Result holds the Fig. 3 sweep over processor counts on one platform.
type Fig3Result struct {
	Platform string
	Points   []Fig3Point
	Cfg      Config
}

// DefaultFig3Procs mirrors the paper's x-axis on Hera: 128 to 1472
// processors.
func DefaultFig3Procs() []float64 {
	var ps []float64
	for p := 128.0; p <= 1472; p += 96 {
		ps = append(ps, p)
	}
	return ps
}

// Fig3 reproduces Fig. 3: the optimal checkpointing period T*_P (from
// Theorem 1), the simulated execution overhead, and the overhead gap to
// the per-P numerical optimum, for each of the six scenarios across a
// range of processor counts.
func Fig3(pl platform.Platform, procs []float64, cfg Config) (*Fig3Result, error) {
	return Fig3Context(context.Background(), pl, procs, cfg)
}

// Fig3Context is Fig3 with cancellation.
func Fig3Context(ctx context.Context, pl platform.Platform, procs []float64, cfg Config) (*Fig3Result, error) {
	cfg = cfg.withDefaults()
	if len(procs) == 0 {
		procs = DefaultFig3Procs()
	}
	type cellIdx struct {
		sc costmodel.Scenario
		p  float64
	}
	var idx []cellIdx
	for _, sc := range costmodel.AllScenarios {
		for _, p := range procs {
			idx = append(idx, cellIdx{sc, p})
		}
	}
	points := make([]Fig3Point, len(idx))
	err := parallelFor(ctx, len(idx), cfg.Workers, func(ctx context.Context, i int) error {
		sc, p := idx[i].sc, idx[i].p
		label := fmt.Sprintf("fig3/%s/%v/P=%g", pl.Name, sc, p)
		m, err := BuildModel(pl, sc, cfg.Alpha, cfg.Downtime)
		if err != nil {
			return err
		}
		tFO := m.OptimalPeriodFixedP(p)
		ev, err := simulateEval(ctx, m, solutionAt(tFO, p), false, cfg, label)
		if err != nil {
			return err
		}
		tNum, _, err := optimize.OptimalPeriod(m, p, optimize.PatternOptions{})
		if err != nil {
			return err
		}
		points[i] = Fig3Point{
			Scenario:      sc,
			P:             p,
			PeriodFO:      tFO,
			SimOverheadFO: ev.SimulatedH,
			SimCI:         ev.SimCI,
			PeriodNum:     tNum,
			OverheadFO:    m.Overhead(tFO, p),
			OverheadN:     m.Overhead(tNum, p),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig3Result{Platform: pl.Name, Points: points, Cfg: cfg}, nil
}

// PanelSeries returns the three panels as series keyed by scenario:
// (a) T*_P vs P, (b) simulated overhead vs P, (c) overhead gap %.
func (r *Fig3Result) PanelSeries() (periods, overheads, diffs []report.Series) {
	bySc := map[costmodel.Scenario]int{}
	for _, sc := range costmodel.AllScenarios {
		bySc[sc] = len(periods)
		name := sc.String()
		periods = append(periods, report.Series{Name: name})
		overheads = append(overheads, report.Series{Name: name})
		diffs = append(diffs, report.Series{Name: name})
	}
	for _, pt := range r.Points {
		i := bySc[pt.Scenario]
		periods[i].Add(pt.P, pt.PeriodFO)
		overheads[i].Add(pt.P, pt.SimOverheadFO)
		diffs[i].Add(pt.P, pt.DiffPercent())
	}
	return periods, overheads, diffs
}

// Render writes the three panels as tables.
func (r *Fig3Result) Render(w io.Writer) error {
	ta := report.NewTable(
		fmt.Sprintf("Fig. 3(a) — optimal period T*_P on %s (α=%g)", r.Platform, r.Cfg.Alpha),
		"P", "sc1", "sc2", "sc3", "sc4", "sc5", "sc6")
	tb := report.NewTable(
		fmt.Sprintf("Fig. 3(b) — simulated overhead on %s", r.Platform),
		"P", "sc1", "sc2", "sc3", "sc4", "sc5", "sc6")
	tc := report.NewTable(
		fmt.Sprintf("Fig. 3(c) — overhead gap first-order vs optimal (%%) on %s", r.Platform),
		"P", "sc1", "sc2", "sc3", "sc4", "sc5", "sc6")

	byP := map[float64]map[costmodel.Scenario]Fig3Point{}
	var order []float64
	for _, pt := range r.Points {
		if _, ok := byP[pt.P]; !ok {
			byP[pt.P] = map[costmodel.Scenario]Fig3Point{}
			order = append(order, pt.P)
		}
		byP[pt.P][pt.Scenario] = pt
	}
	for _, p := range order {
		rowA := make([]float64, 0, 6)
		rowB := make([]float64, 0, 6)
		rowC := make([]float64, 0, 6)
		for _, sc := range costmodel.AllScenarios {
			pt := byP[p][sc]
			rowA = append(rowA, pt.PeriodFO)
			rowB = append(rowB, pt.SimOverheadFO)
			rowC = append(rowC, pt.DiffPercent())
		}
		ta.AddFloats(report.Fmt(p), rowA...)
		tb.AddFloats(report.Fmt(p), rowB...)
		tc.AddFloats(report.Fmt(p), rowC...)
	}
	for _, t := range []*report.Table{ta, tb, tc} {
		if err := t.Render(w); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits all three panels as long-form series.
func (r *Fig3Result) WriteCSV(w io.Writer) error {
	periods, overheads, diffs := r.PanelSeries()
	var all []report.Series
	for i := range periods {
		p := periods[i]
		p.Name = "period/" + p.Name
		o := overheads[i]
		o.Name = "overhead/" + o.Name
		d := diffs[i]
		d.Name = "diff_pct/" + d.Name
		all = append(all, p, o, d)
	}
	return report.WriteSeriesCSV(w, "P", "value", all...)
}
