package experiments

import (
	"context"
	"fmt"
	"io"

	"amdahlyd/internal/baselines"
	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/optimize"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/report"
)

// BaselineCell compares tuning policies on one platform: what a
// fail-stop-only Young/Daly tuning costs against the paper's VC-aware
// optimum, everything priced by simulation under the full error model.
type BaselineCell struct {
	Platform string
	Scenario costmodel.Scenario
	// Optimal is the exact-model numerical optimum (the paper).
	Optimal Eval
	// Young and Daly use the numerical P* but set the period from the
	// fail-stop-only formulas [20], [9].
	Young Eval
	Daly  Eval
	// Relaxation is the iterative-relaxation allocation [14].
	Relaxation Eval
	// YoungAssumedH is what the fail-stop-only analysis believes the
	// Young plan costs — the gap to Young.SimulatedH is the price of
	// ignoring silent errors in the model.
	YoungAssumedH float64
}

// BaselineStudyResult is the cross-platform baseline comparison: the
// motivation quantified — how much of the overhead reduction comes from
// modelling silent errors at all.
type BaselineStudyResult struct {
	Cells []BaselineCell
	Cfg   Config
}

// BaselineStudy runs the comparison on the given platforms under one
// scenario at α = cfg.Alpha.
func BaselineStudy(platforms []platform.Platform, sc costmodel.Scenario, cfg Config) (*BaselineStudyResult, error) {
	return BaselineStudyContext(context.Background(), platforms, sc, cfg)
}

// BaselineStudyContext is BaselineStudy with cancellation. The numerical
// optima are solved as one warm-start chain across the platform list
// (the scenario — and hence the objective class — is fixed, so adjacent
// platforms bracket each other; see optimize.SweepSolver).
func BaselineStudyContext(ctx context.Context, platforms []platform.Platform, sc costmodel.Scenario, cfg Config) (*BaselineStudyResult, error) {
	cfg = cfg.withDefaults()
	models := make([]core.Model, len(platforms))
	for i, pl := range platforms {
		m, err := BuildModel(pl, sc, cfg.Alpha, cfg.Downtime)
		if err != nil {
			return nil, err
		}
		models[i] = m
	}
	nums, err := optimize.BatchOptimalPattern(models, optimize.SweepOptions{Cold: cfg.ColdSolve})
	if err != nil {
		return nil, fmt.Errorf("experiments: optimizing baselines/%v: %w", sc, err)
	}
	cells := make([]BaselineCell, len(platforms))
	err = parallelFor(ctx, len(platforms), cfg.Workers, func(ctx context.Context, i int) error {
		pl := platforms[i]
		label := fmt.Sprintf("baselines/%s/%v", pl.Name, sc)
		m, num := models[i], nums[i]
		opt, err := simulateEval(ctx, m, num.Solution, num.AtPBound, cfg, label+"/optimal")
		if err != nil {
			return err
		}

		young, err := baselines.PlanYoung(m, num.P)
		if err != nil {
			return err
		}
		youngEval, err := simulateEval(ctx, m, solutionAt(young.T, num.P), false, cfg, label+"/young")
		if err != nil {
			return err
		}
		youngEval.Method = "young"

		daly, err := baselines.PlanDaly(m, num.P)
		if err != nil {
			return err
		}
		dalyEval, err := simulateEval(ctx, m, solutionAt(daly.T, num.P), false, cfg, label+"/daly")
		if err != nil {
			return err
		}
		dalyEval.Method = "daly"

		relax, _, err := baselines.IterativeRelaxation(m, 0, 0)
		if err != nil {
			return err
		}
		relaxEval, err := simulateEval(ctx, m, relax, false, cfg, label+"/relaxation")
		if err != nil {
			return err
		}

		cells[i] = BaselineCell{
			Platform:      pl.Name,
			Scenario:      sc,
			Optimal:       opt,
			Young:         youngEval,
			Daly:          dalyEval,
			Relaxation:    relaxEval,
			YoungAssumedH: young.AssumedOverhead,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &BaselineStudyResult{Cells: cells, Cfg: cfg}, nil
}

// Render writes the comparison table. The "Young believes" column shows
// the overhead the fail-stop-only model predicts for its own plan; the
// gap to "Young actual" is the modelling error caused by silent errors.
func (r *BaselineStudyResult) Render(w io.Writer) error {
	tb := report.NewTable(
		fmt.Sprintf("Baseline comparison — %v, α=%g (simulated overheads, full error model)",
			r.Cells[0].Scenario, r.Cfg.Alpha),
		"platform", "VC optimal", "Young actual", "Young believes",
		"Daly actual", "relaxation", "Young excess")
	for _, c := range r.Cells {
		excess := (c.Young.SimulatedH - c.Optimal.SimulatedH) / c.Optimal.SimulatedH * 100
		tb.AddRow(c.Platform,
			report.Fmt(c.Optimal.SimulatedH),
			report.Fmt(c.Young.SimulatedH),
			report.Fmt(c.YoungAssumedH),
			report.Fmt(c.Daly.SimulatedH),
			report.Fmt(c.Relaxation.SimulatedH),
			fmt.Sprintf("+%.2f%%", excess))
	}
	if err := tb.Render(w); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// WriteCSV emits the comparison in long form.
func (r *BaselineStudyResult) WriteCSV(w io.Writer) error {
	var series []report.Series
	add := func(name string, get func(BaselineCell) float64) {
		s := report.Series{Name: name}
		for i, c := range r.Cells {
			s.Add(float64(i), get(c))
		}
		series = append(series, s)
	}
	add("overhead_optimal", func(c BaselineCell) float64 { return c.Optimal.SimulatedH })
	add("overhead_young", func(c BaselineCell) float64 { return c.Young.SimulatedH })
	add("overhead_young_assumed", func(c BaselineCell) float64 { return c.YoungAssumedH })
	add("overhead_daly", func(c BaselineCell) float64 { return c.Daly.SimulatedH })
	add("overhead_relaxation", func(c BaselineCell) float64 { return c.Relaxation.SimulatedH })
	return report.WriteSeriesCSV(w, "platform_index", "value", series...)
}
