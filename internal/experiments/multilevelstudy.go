package experiments

import (
	"context"
	"fmt"
	"io"
	"math"

	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/multilevel"
	"amdahlyd/internal/optimize"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/report"
)

// MultilevelCell is one (scenario, in-memory fraction) cell of the
// multilevel study: the joint two-level optimum (T*, K*, P*), its
// first-order prediction and Monte-Carlo price, against the single-level
// numerical optimum of the same scenario.
type MultilevelCell struct {
	Scenario costmodel.Scenario
	// Frac prices the in-memory checkpoint at Frac·C_P.
	Frac float64
	// T, K and P are the joint two-level optimum.
	T float64
	K int
	P float64
	// PredictedH is the first-order two-level overhead at the optimum.
	PredictedH float64
	// SimulatedH is the Monte-Carlo mean overhead with CI95 half-width
	// SimCI (NaN when the cell is unsimulable).
	SimulatedH, SimCI float64
	// SingleP and SingleH are the single-level numerical optimum and its
	// simulated overhead — the baseline the two-level protocol must beat.
	SingleP, SingleH float64
	// SavingPct is the relative overhead reduction of the simulated
	// two-level optimum over the simulated single-level one, in percent.
	SavingPct float64
	// AtBound flags a joint optimum that stopped at the processor search
	// bound; such cells are reported unsimulated (the two-level simulator
	// has no error-pressure escape at extreme allocations).
	AtBound bool
	// Warm reports that the cell was solved in the warm bracket of its
	// axis neighbour.
	Warm bool
}

// MultilevelResult is the full study: Table III scenarios × in-memory
// cost fractions on one platform.
type MultilevelResult struct {
	Platform string
	Cells    []MultilevelCell
	Cfg      Config
}

// DefaultMultilevelFractions is the in-memory cost axis of the study:
// C1/C2 from 1/60 (a 5 s buddy checkpoint under a 300 s disk one) to 1
// (the in-memory level as expensive as disk — the protocol's break-even
// sanity cell).
var DefaultMultilevelFractions = []float64{1.0 / 60, 1.0 / 15, 0.2, 0.5, 1}

// MultilevelStudy runs the two-level extension study: for each scenario
// and in-memory cost fraction, the joint (T, K, P) optimum — the paper's
// central how-many-processors question asked of the two-level protocol —
// priced by Monte-Carlo and compared with the single-level numerical
// optimum. nil fracs and scenarios select the defaults (the
// DefaultMultilevelFractions axis; scenarios 1, 3, 5 as in the sweep
// figures).
func MultilevelStudy(pl platform.Platform, fracs []float64,
	scenarios []costmodel.Scenario, cfg Config) (*MultilevelResult, error) {
	return MultilevelStudyContext(context.Background(), pl, fracs, scenarios, cfg)
}

// MultilevelStudyContext is MultilevelStudy with cancellation. It runs
// the two-phase sweep shape: phase 1 solves the joint optima as one
// warm-start chain per scenario along the fraction axis
// (multilevel.SweepSolver; cfg.ColdSolve restores per-cell full-box
// scans) plus one single-level chain across scenarios, phase 2 prices
// every cell by Monte-Carlo in parallel with per-cell seeds derived from
// the streaming label hash.
func MultilevelStudyContext(ctx context.Context, pl platform.Platform, fracs []float64,
	scenarios []costmodel.Scenario, cfg Config) (*MultilevelResult, error) {
	cfg = cfg.withDefaults()
	if len(fracs) == 0 {
		fracs = DefaultMultilevelFractions
	}
	if len(scenarios) == 0 {
		scenarios = scenarios135
	}

	// Phase 1a: one single-level warm-start chain across the scenarios
	// (the baseline depends only on the scenario, not on the fraction).
	scModels := make([]core.Model, len(scenarios))
	for i, sc := range scenarios {
		m, err := BuildModel(pl, sc, cfg.Alpha, cfg.Downtime)
		if err != nil {
			return nil, err
		}
		scModels[i] = m
	}
	scNums, err := optimize.BatchOptimalPattern(scModels, optimize.SweepOptions{Cold: cfg.ColdSolve})
	if err != nil {
		return nil, fmt.Errorf("experiments: multilevel/%s single-level baseline: %w", pl.Name, err)
	}

	// Phase 1b: one multilevel chain per scenario along the fraction
	// axis. IntegerP keeps the joint optimum on integral allocations, so
	// warm and cold chains land on bit-identical cells (the refinement
	// difference is far below the rounding step) and the phase-2
	// campaigns replay bit-identically across -warm modes.
	nCells := len(scenarios) * len(fracs)
	cells := make([]MultilevelCell, nCells)
	mlOpts := multilevel.SweepOptions{
		PatternOptions: multilevel.PatternOptions{IntegerP: true},
		Cold:           cfg.ColdSolve,
	}
	err = parallelFor(ctx, len(scenarios), cfg.Workers, func(ctx context.Context, si int) error {
		sc := scenarios[si]
		m := scModels[si]
		solver := multilevel.NewSweepSolver(mlOpts)
		for fi, frac := range fracs {
			if err := ctx.Err(); err != nil {
				return err
			}
			res, err := solver.Solve(m, multilevel.InMemoryFraction(m, frac))
			if err != nil {
				return fmt.Errorf("experiments: multilevel/%s/%v/frac=%g: %w",
					pl.Name, sc, frac, err)
			}
			cells[si*len(fracs)+fi] = MultilevelCell{
				Scenario:   sc,
				Frac:       frac,
				T:          res.T,
				K:          res.K,
				P:          res.P,
				PredictedH: res.PredictedH,
				AtBound:    res.AtPBound,
				Warm:       res.Warm,
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: all Monte-Carlo campaigns in parallel — one two-level
	// campaign per cell plus one single-level baseline per scenario
	// (appended after the cells in the job index space).
	singleH := make([]float64, len(scenarios))
	err = parallelFor(ctx, nCells+len(scenarios), cfg.Workers, func(ctx context.Context, i int) error {
		if i >= nCells {
			// Single-level baseline: the scenario's numerical optimum
			// priced by the pattern-level simulator.
			si := i - nCells
			sc := scenarios[si]
			num := scNums[si]
			seed := newSeedHash().str("multilevel/").str(pl.Name).str("/").str(sc.String()).
				str("/single-level").seed(cfg.Seed)
			ev, err := simulateEvalSeed(ctx, scModels[si], num.Solution, num.AtPBound, cfg, seed,
				func() string {
					return fmt.Sprintf("multilevel/%s/%v/single-level", pl.Name, sc)
				})
			if err != nil {
				return err
			}
			singleH[si] = ev.SimulatedH
			return nil
		}
		cell := &cells[i]
		if cell.AtBound {
			cell.SimulatedH, cell.SimCI = math.NaN(), math.NaN()
			return nil
		}
		si := i / len(fracs)
		m := scModels[si]
		costs, err := multilevel.SingleLevelCosts(m, cell.P, cell.Frac)
		if err != nil {
			return err
		}
		lf, ls := m.Rates(cell.P)
		s, err := multilevel.NewSimulator(costs, multilevel.Pattern{T: cell.T, K: cell.K}, lf, ls)
		if err != nil {
			return err
		}
		seed := newSeedHash().str("multilevel/").str(pl.Name).str("/").str(cell.Scenario.String()).
			str("/frac=").float(cell.Frac).seed(cfg.Seed)
		res, err := s.SimulateContext(ctx, multilevel.CampaignConfig{
			Runs:     cfg.Runs,
			Patterns: cfg.Patterns,
			Seed:     seed,
			Workers:  1, // parallelism lives at the cell level
			HOfP:     m.Profile.Overhead(cell.P),
		})
		if err != nil {
			return fmt.Errorf("experiments: simulating multilevel/%s/%v/frac=%g: %w",
				pl.Name, cell.Scenario, cell.Frac, err)
		}
		cell.SimulatedH, cell.SimCI = res.Overhead.Mean, res.Overhead.CI95
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Join the baseline into every cell of its scenario.
	for i := range cells {
		si := i / len(fracs)
		cells[i].SingleP = scNums[si].P
		cells[i].SingleH = singleH[si]
		cells[i].SavingPct = (1 - cells[i].SimulatedH/singleH[si]) * 100
	}
	return &MultilevelResult{Platform: pl.Name, Cells: cells, Cfg: cfg}, nil
}

// Render writes the study as one table: the joint two-level structure
// and price per (scenario, fraction), against the single-level optimum.
func (r *MultilevelResult) Render(w io.Writer) error {
	tb := report.NewTable(
		fmt.Sprintf("Multilevel study on %s — joint (T, K, P) optimum vs single-level, α=%g, D=%gs",
			r.Platform, r.Cfg.Alpha, r.Cfg.Downtime),
		"scenario", "C1/C2", "T* (s)", "K*", "P*", "H pred", "H sim",
		"P* (1-level)", "H sim (1-level)", "saving")
	for _, c := range r.Cells {
		saving := "-"
		if !math.IsNaN(c.SavingPct) {
			saving = fmt.Sprintf("%+.2f%%", c.SavingPct)
		}
		if err := tb.AddRow(c.Scenario.String(),
			report.Fmt(c.Frac),
			report.Fmt(c.T),
			fmt.Sprintf("%d", c.K),
			report.Fmt(c.P),
			report.Fmt(c.PredictedH),
			report.Fmt(c.SimulatedH),
			report.Fmt(c.SingleP),
			report.Fmt(c.SingleH),
			saving); err != nil {
			return err
		}
	}
	if err := tb.Render(w); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// WriteCSV emits the study in long form, one series per quantity, x =
// cell index in (scenario-major, fraction-minor) order.
func (r *MultilevelResult) WriteCSV(w io.Writer) error {
	var series []report.Series
	add := func(name string, get func(MultilevelCell) float64) {
		s := report.Series{Name: name}
		for i, c := range r.Cells {
			s.Add(float64(i), get(c))
		}
		series = append(series, s)
	}
	add("scenario", func(c MultilevelCell) float64 { return float64(c.Scenario) })
	add("frac", func(c MultilevelCell) float64 { return c.Frac })
	add("tstar", func(c MultilevelCell) float64 { return c.T })
	add("kstar", func(c MultilevelCell) float64 { return float64(c.K) })
	add("pstar", func(c MultilevelCell) float64 { return c.P })
	add("overhead_pred", func(c MultilevelCell) float64 { return c.PredictedH })
	add("overhead_sim", func(c MultilevelCell) float64 { return c.SimulatedH })
	add("pstar_single", func(c MultilevelCell) float64 { return c.SingleP })
	add("overhead_sim_single", func(c MultilevelCell) float64 { return c.SingleH })
	add("saving_pct", func(c MultilevelCell) float64 { return c.SavingPct })
	return report.WriteSeriesCSV(w, "cell_index", "value", series...)
}
