package experiments

import (
	"bytes"
	"strings"
	"testing"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/platform"
)

func TestBaselineStudy(t *testing.T) {
	res, err := BaselineStudy(platform.All(), costmodel.Scenario1, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("expected 4 platforms, got %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		// The VC optimum must beat (or tie) every baseline under the
		// full model, up to Monte-Carlo noise.
		noise := 4 * (c.Optimal.SimCI + c.Young.SimCI)
		if c.Optimal.SimulatedH > c.Young.SimulatedH+noise {
			t.Errorf("%s: optimal %g worse than Young %g", c.Platform,
				c.Optimal.SimulatedH, c.Young.SimulatedH)
		}
		if c.Optimal.SimulatedH > c.Relaxation.SimulatedH+noise {
			t.Errorf("%s: optimal %g worse than relaxation %g", c.Platform,
				c.Optimal.SimulatedH, c.Relaxation.SimulatedH)
		}
		// The fail-stop-only analysis underestimates its own plan's cost
		// (silent errors are invisible to it).
		if c.YoungAssumedH >= c.Young.SimulatedH {
			t.Errorf("%s: Young believes %g >= actual %g — silent errors not priced",
				c.Platform, c.YoungAssumedH, c.Young.SimulatedH)
		}
		// Daly refines Young; under the full model it should be at least
		// comparable (both ignore silent errors equally).
		if c.Daly.SimulatedH > c.Young.SimulatedH*1.05 {
			t.Errorf("%s: Daly %g much worse than Young %g", c.Platform,
				c.Daly.SimulatedH, c.Young.SimulatedH)
		}
	}

	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Baseline comparison", "Hera", "CoastalSSD", "Young excess"} {
		if !strings.Contains(buf.String(), frag) {
			t.Errorf("render missing %q", frag)
		}
	}
	var csvBuf bytes.Buffer
	if err := res.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csvBuf.String(), "overhead_young_assumed") {
		t.Error("CSV missing series")
	}
}

func TestBaselineStudySilentHeavyPlatformSuffersMore(t *testing.T) {
	// Atlas has the highest silent fraction (s = 0.9375): ignoring
	// silent errors must cost it more (relative to its optimum) than
	// Hera (s = 0.7812).
	res, err := BaselineStudy([]platform.Platform{platform.Hera(), platform.Atlas()},
		costmodel.Scenario1, Quick())
	if err != nil {
		t.Fatal(err)
	}
	excess := func(c BaselineCell) float64 {
		return (c.Young.SimulatedH - c.Optimal.SimulatedH) / c.Optimal.SimulatedH
	}
	hera, atlas := res.Cells[0], res.Cells[1]
	if excess(atlas) <= excess(hera) {
		t.Errorf("Atlas (s=0.94) Young excess %.4f should exceed Hera (s=0.78) %.4f",
			excess(atlas), excess(hera))
	}
}
