package experiments

import (
	"context"
	"fmt"
	"io"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/optimize"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/report"
	"amdahlyd/internal/speedup"
)

// ProfileCell is one (profile, scenario) cell of the profile study.
type ProfileCell struct {
	Profile  string
	Scenario costmodel.Scenario
	// SemiAnalytic is the Theorem 1-based optimum (first-order in T,
	// numerical in P) — defined for every profile.
	SemiAnalytic Eval
	// Optimal is the full numerical optimum of the exact formula.
	Optimal Eval
}

// ProfileStudyResult extends the paper ("different speedup profiles",
// Section V): optimal patterns for speedup profiles beyond Amdahl's law,
// on one platform at one scenario, priced by simulation.
type ProfileStudyResult struct {
	Platform string
	Cells    []ProfileCell
	Cfg      Config
}

// DefaultProfiles is the profile set of the study: the paper's Amdahl
// law, Gustafson weak scaling, and an empirical power law. Construction
// goes through the validating constructors so a bad α cannot silently
// produce a decreasing S(P).
func DefaultProfiles(alpha float64) ([]speedup.Profile, error) {
	am, err := speedup.NewAmdahl(alpha)
	if err != nil {
		return nil, err
	}
	gu, err := speedup.NewGustafson(alpha)
	if err != nil {
		return nil, err
	}
	pw9, err := speedup.NewPowerLaw(0.9)
	if err != nil {
		return nil, err
	}
	pw7, err := speedup.NewPowerLaw(0.7)
	if err != nil {
		return nil, err
	}
	return []speedup.Profile{am, gu, pw9, pw7}, nil
}

// ProfileStudy runs the extension experiment: for each profile and each
// of scenarios 1, 3 and 5, compute the semi-analytic and fully numerical
// optima and price both by Monte-Carlo simulation.
func ProfileStudy(pl platform.Platform, sc costmodel.Scenario, profiles []speedup.Profile, cfg Config) (*ProfileStudyResult, error) {
	return ProfileStudyContext(context.Background(), pl, sc, profiles, cfg)
}

// ProfileStudyContext is ProfileStudy with cancellation.
func ProfileStudyContext(ctx context.Context, pl platform.Platform, sc costmodel.Scenario, profiles []speedup.Profile, cfg Config) (*ProfileStudyResult, error) {
	cfg = cfg.withDefaults()
	if len(profiles) == 0 {
		var err error
		profiles, err = DefaultProfiles(cfg.Alpha)
		if err != nil {
			return nil, err
		}
	}
	cells := make([]ProfileCell, len(profiles))
	err := parallelFor(ctx, len(profiles), cfg.Workers, func(ctx context.Context, i int) error {
		prof := profiles[i]
		if err := speedup.Validate(prof); err != nil {
			return err
		}
		label := fmt.Sprintf("profiles/%s/%v/%s", pl.Name, sc, prof.Name())
		m, err := BuildModel(pl, sc, cfg.Alpha, cfg.Downtime)
		if err != nil {
			return err
		}
		m.Profile = prof
		// Cap the search so weak-scaling profiles (whose overhead keeps
		// improving for a long time) stay in a simulable range.
		opts := optimize.PatternOptions{PMax: 1e9}

		sa, err := optimize.SemiAnalyticOptimum(m, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		saEval, err := simulateEval(ctx, m, sa, false, cfg, label+"/semi-analytic")
		if err != nil {
			return err
		}

		num, err := optimize.OptimalPattern(m, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		numEval, err := simulateEval(ctx, m, num.Solution, num.AtPBound, cfg, label+"/numerical")
		if err != nil {
			return err
		}
		cells[i] = ProfileCell{
			Profile:      prof.Name(),
			Scenario:     sc,
			SemiAnalytic: saEval,
			Optimal:      numEval,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &ProfileStudyResult{Platform: pl.Name, Cells: cells, Cfg: cfg}, nil
}

// Render writes the study as one table.
func (r *ProfileStudyResult) Render(w io.Writer) error {
	tb := report.NewTable(
		fmt.Sprintf("Profile study (extension) on %s — %v, D=%gs",
			r.Platform, r.Cells[0].Scenario, r.Cfg.Downtime),
		"profile",
		"P* (semi-analytic)", "P* (optimal)",
		"T* (semi-analytic)", "T* (optimal)",
		"H sim (semi-analytic)", "H sim (optimal)",
	)
	for _, c := range r.Cells {
		tb.AddFloats(c.Profile,
			c.SemiAnalytic.P, c.Optimal.P,
			c.SemiAnalytic.T, c.Optimal.T,
			c.SemiAnalytic.SimulatedH, c.Optimal.SimulatedH,
		)
	}
	if err := tb.Render(w); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// WriteCSV emits the study in long form.
func (r *ProfileStudyResult) WriteCSV(w io.Writer) error {
	var series []report.Series
	add := func(name string, get func(ProfileCell) float64) {
		s := report.Series{Name: name}
		for i, c := range r.Cells {
			s.Add(float64(i), get(c))
		}
		series = append(series, s)
	}
	add("pstar_semi_analytic", func(c ProfileCell) float64 { return c.SemiAnalytic.P })
	add("pstar_optimal", func(c ProfileCell) float64 { return c.Optimal.P })
	add("overhead_sim_semi_analytic", func(c ProfileCell) float64 { return c.SemiAnalytic.SimulatedH })
	add("overhead_sim_optimal", func(c ProfileCell) float64 { return c.Optimal.SimulatedH })
	return report.WriteSeriesCSV(w, "profile_index", "value", series...)
}
