package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// ErrInjected is the error injected by a FaultPlan; tests match it to
// prove the retry path ran for the planned reason and not a real bug.
var ErrInjected = errors.New("campaign: injected fault")

// Fault describes the misbehaviour injected into a cell's Monte-Carlo
// attempts. Faults are deterministic — same plan, same cells, same
// attempts — which is what lets tests assert crash/resume/retry behavior
// instead of hoping a real flake shows up.
type Fault struct {
	// FailAttempts makes the first N attempts of the cell fail (with
	// ErrInjected, or a panic when Panic is set). A value not above the
	// executor's retry limit exercises recovery; a larger one forces a
	// permanent failure and the failure-budget path.
	FailAttempts int `json:"fail_attempts,omitempty"`
	// Panic turns injected failures into panics, exercising the
	// executor's recover-and-retry path.
	Panic bool `json:"panic,omitempty"`
	// DelayMS stalls every attempt before it starts: combined with a
	// per-cell timeout it forces the deadline path, and in the CI
	// kill-and-resume job it widens the window the SIGKILL must land in.
	DelayMS int `json:"delay_ms,omitempty"`
}

// FaultPlan maps cells to injected faults, keyed by cell ID, by the
// human-readable Label, or by "*" (every cell).
type FaultPlan map[string]Fault

// find resolves the fault for a cell, most specific key first.
func (fp FaultPlan) find(c *Cell) (Fault, bool) {
	if fp == nil {
		return Fault{}, false
	}
	if f, ok := fp[c.ID]; ok {
		return f, true
	}
	if f, ok := fp[c.Label()]; ok {
		return f, true
	}
	f, ok := fp["*"]
	return f, ok
}

// ReadFaultPlan decodes a plan from JSON ({"cell-or-label-or-*": fault}).
func ReadFaultPlan(r io.Reader) (FaultPlan, error) {
	var fp FaultPlan
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&fp); err != nil {
		return nil, fmt.Errorf("campaign: bad fault plan: %w", err)
	}
	for k, f := range fp {
		if f.FailAttempts < 0 || f.DelayMS < 0 {
			return nil, fmt.Errorf("campaign: fault %q: negative fail_attempts/delay_ms", k)
		}
	}
	return fp, nil
}
