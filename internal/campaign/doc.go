// Package campaign is the crash-safe grid orchestrator: a declarative
// manifest expands into a deterministic grid of cells (platforms ×
// scenarios × distributions × protocols × one sweep axis), each cell is
// solved on the warm-start sweep solvers and priced by Monte-Carlo, and
// every result lands as one atomic, checksummed artifact file. A
// campaign killed at any instant — SIGKILL included — loses at most its
// in-flight cells: resuming re-plans the grid, verifies completed
// artifacts by checksum, deterministically replays the solver chains,
// and re-runs only what is missing, producing a byte-identical aggregate
// report (see DESIGN.md, "Campaign orchestrator & fault injection").
//
// # Determinism
//
// Cell identity is content-addressed: the ID hashes the canonical
// core.Model.CacheKey and failures.CacheKey material plus protocol,
// fraction and budget, so IDs survive manifest reordering, and each
// cell's Monte-Carlo seed derives from the same material XOR the
// manifest's master seed. Reports are pure functions of the plan and the
// banked artifacts — no timestamps, no counters — which is what makes
// "byte-identical after resume" a testable contract rather than a hope.
// Skipped cells are Observed into the warm-start chains exactly as their
// original solve would have been, so resumed chains replay the original
// refinement path.
//
// # Robustness
//
// The executor is built to survive the failures the modeled applications
// survive: transient cell errors retry with exponential backoff and
// deterministic jitter, a failure budget fails the campaign fast when
// exceeded (banked cells stay banked either way), cells run under
// optional per-attempt timeouts, an interrupt cancels in-flight work and
// flushes the journal, and a deterministic fault-injection plan
// (FaultPlan: error/panic/delay by cell ID, label or wildcard) lets
// tests prove the crash/resume/retry behavior instead of hoping for it.
//
// The CLI entry point is "amdahl-exp campaign"; the five study presets
// (Preset, PresetNames) express the paper's hand-written drivers as
// manifests.
package campaign
