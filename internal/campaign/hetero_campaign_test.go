package campaign

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"amdahlyd/internal/experiments"
	"amdahlyd/internal/platform"
)

// heteroTestManifest is a small hetero grid: one chain over two comm
// values on the Hera-derived two-group study topology.
func heteroTestManifest() Manifest {
	tp := experiments.HeteroStudyTopology(platform.Hera(), 0, 0.25)
	return Manifest{
		Name:      "hg",
		Seed:      17,
		Runs:      3,
		Patterns:  5,
		Topology:  &tp,
		Scenarios: []int{1},
		Protocols: []ProtocolSpec{{Name: ProtocolHetero}},
		Axis:      AxisComm,
		Values:    []float64{0, 1e-5},
	}
}

func TestHeteroExpand(t *testing.T) {
	p, err := Expand(heteroTestManifest())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cells) != 2 || len(p.Chains) != 1 {
		t.Fatalf("got %d cells in %d chains, want 2 in 1", len(p.Cells), len(p.Chains))
	}
	for i, c := range p.Cells {
		if len(c.Hetero.Groups) != 2 {
			t.Fatalf("cell %d: %d compiled groups, want 2", i, len(c.Hetero.Groups))
		}
		if c.Hetero.Comm != p.Manifest.Values[i] {
			t.Errorf("cell %d: comm %g, want axis value %g", i, c.Hetero.Comm, p.Manifest.Values[i])
		}
		if c.Comm != p.Manifest.Values[i] {
			t.Errorf("cell %d: Cell.Comm %g, want %g", i, c.Comm, p.Manifest.Values[i])
		}
		if c.Protocol != ProtocolHetero {
			t.Errorf("cell %d: protocol %q", i, c.Protocol)
		}
		if c.Platform != "Hera+accel" {
			t.Errorf("cell %d: platform %q not derived from topology name", i, c.Platform)
		}
		if !math.IsNaN(c.Lambda) {
			t.Errorf("cell %d: Lambda %g, want NaN for a topology cell", i, c.Lambda)
		}
		if c.Model.LambdaInd != 0 {
			t.Errorf("cell %d: homogeneous Model populated on a hetero cell", i)
		}
	}
	if p.Cells[0].ID == p.Cells[1].ID {
		t.Error("comm values collapsed to one cell ID")
	}
}

// TestHeteroCampaignRunAndResume runs the hetero grid end to end, then
// proves the resume contract on it: kill one artifact, resume, and the
// reports are byte-identical to an uninterrupted run.
func TestHeteroCampaignRunAndResume(t *testing.T) {
	man := heteroTestManifest()
	clean, crashed := t.TempDir(), t.TempDir()
	mustRun(t, man, testOptions(clean))

	// The artifacts carry the joint per-group plan.
	p, err := Expand(man)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p.Cells {
		a, err := loadArtifact(clean, c, man.Runs, man.Patterns)
		if err != nil {
			t.Fatalf("artifact %s: %v", c.ID, err)
		}
		if a.G < 1 || a.G != len(a.Groups) {
			t.Fatalf("cell %s: G=%d with %d group plans", c.ID, a.G, len(a.Groups))
		}
		if a.T != 0 || a.P != 0 {
			t.Errorf("cell %s: hetero artifact carries scalar T/P (%g, %g)", c.ID, a.T, a.P)
		}
		var fracSum float64
		for _, g := range a.Groups {
			if !(g.T > 0) || !(g.P >= 1) || g.P != math.Trunc(g.P) {
				t.Errorf("cell %s group %d: bad plan T=%g P=%g (want T>0, integral P>=1)",
					c.ID, g.Group, g.T, g.P)
			}
			fracSum += g.Fraction
		}
		if math.Abs(fracSum-1) > 1e-9 {
			t.Errorf("cell %s: work fractions sum to %g, want 1", c.ID, fracSum)
		}
		if a.SimH == nil && !a.Unsimulable {
			t.Errorf("cell %s: no simulated overhead and not marked unsimulable", c.ID)
		}
	}

	mustRun(t, man, testOptions(crashed))
	cells, err := filepath.Glob(filepath.Join(crashed, "cells", "*.json"))
	if err != nil || len(cells) == 0 {
		t.Fatalf("artifacts: %v", err)
	}
	if err := os.Remove(cells[0]); err != nil {
		t.Fatal(err)
	}
	opts := testOptions(crashed)
	opts.Resume = true
	sum := mustRun(t, man, opts)
	if sum.Executed != 1 || sum.Skipped != 1 {
		t.Errorf("resume executed %d / skipped %d cells, want 1 / 1", sum.Executed, sum.Skipped)
	}
	assertSameReports(t, clean, crashed)
}

func TestHeteroManifestValidation(t *testing.T) {
	base := heteroTestManifest()

	noTopo := base
	noTopo.Topology = nil
	if err := noTopo.Validate(); err == nil {
		t.Error("hetero protocol without a topology accepted")
	}

	mixed := base
	mixed.Protocols = []ProtocolSpec{{Name: ProtocolHetero}, {Name: ProtocolSingle}}
	if err := mixed.Validate(); err == nil {
		t.Error("hetero mixed with single-level accepted")
	}

	commNoHetero := testManifest()
	commNoHetero.Axis = AxisComm
	commNoHetero.Values = []float64{0, 1e-5}
	if err := commNoHetero.Validate(); err == nil {
		t.Error("comm axis without the hetero protocol accepted")
	}

	topoNoHetero := testManifest()
	topoNoHetero.Topology = base.Topology
	if err := topoNoHetero.Validate(); err == nil {
		t.Error("topology without the hetero protocol accepted")
	}

	fixedAndAxis := base
	tp := *base.Topology
	tp.Comm = 1e-6
	fixedAndAxis.Topology = &tp
	if err := fixedAndAxis.Validate(); err == nil {
		t.Error("comm fixed in the topology and swept on the axis accepted")
	}

	weird := base
	weird.Distributions = []DistSpec{{Name: "weibull", Shapes: []float64{0.7}}}
	if err := weird.Validate(); err == nil {
		t.Error("non-exponential distribution on the hetero protocol accepted")
	}
}
