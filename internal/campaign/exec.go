package campaign

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"amdahlyd/internal/atomicio"
	"amdahlyd/internal/backoff"
	"amdahlyd/internal/core"
	"amdahlyd/internal/hetero"
	"amdahlyd/internal/multilevel"
	"amdahlyd/internal/optimize"
	"amdahlyd/internal/sim"
)

// Options tunes the executor. The zero value runs a fresh campaign with
// sensible robustness defaults; only OutDir is required.
type Options struct {
	// OutDir is the campaign directory: manifest.json, journal.ndjson,
	// cells/<id>.json artifacts and the final report live here.
	OutDir string
	// Resume re-enters an existing campaign directory: completed cells
	// are verified by checksum and skipped (their solve results re-warm
	// the chains), everything else re-runs. Without Resume, a directory
	// that already holds this campaign's manifest is refused.
	Resume bool
	// Workers bounds chain-level parallelism (default GOMAXPROCS).
	// Cells inside a chain are inherently sequential (warm-starting),
	// and per-cell Monte-Carlo runs single-worker, so results never
	// depend on Workers.
	Workers int
	// MaxAttempts bounds the tries per cell (default 3): transient
	// failures — injected faults, per-attempt timeouts, panics — retry
	// with exponential backoff and deterministic jitter up to this
	// limit, then fail the cell permanently.
	MaxAttempts int
	// RetryBase is the first backoff delay (default 100 ms); attempt n
	// waits RetryBase·2^(n-1) plus up to 100% deterministic jitter.
	RetryBase time.Duration
	// CellTimeout bounds each attempt (0 = none); a deadline hit counts
	// as a transient failure and retries.
	CellTimeout time.Duration
	// FailureBudget is the number of permanently failed cells tolerated
	// before the campaign aborts fast (default 0: the first permanent
	// failure cancels all outstanding work). Any permanent failure —
	// within budget or not — means no final report; the budget only
	// controls how much resumable progress the run banks first.
	FailureBudget int
	// Faults injects deterministic misbehaviour into named cells; the
	// test suite's crash/retry/budget proofs run on it.
	Faults FaultPlan
}

func (o Options) withDefaults() Options {
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 3
	}
	if o.RetryBase == 0 {
		o.RetryBase = 100 * time.Millisecond
	}
	return o
}

// Summary reports how a campaign run spent its cells. Planned is the
// full grid; Skipped cells were verified from a previous run; Executed
// cells ran here; Retries counts recovered transient failures; Failed
// counts permanent cell failures (nonzero Failed means no report).
type Summary struct {
	Planned, Skipped, Executed int
	Unsimulable                int
	Retries, Failed            int
	// ReportText and ReportCSV are the aggregate report paths (empty
	// when the campaign did not complete).
	ReportText, ReportCSV string
}

// maxMachineProcs mirrors the robustness study's bound on the
// machine-level event population: exponential-optimal allocations beyond
// it are reported unsimulable rather than silently mispriced.
const maxMachineProcs = 1 << 16

type runner struct {
	man  Manifest
	plan *Plan
	opts Options
	jrn  *journal

	cancel context.CancelCauseFunc

	skipped, executed, retries atomic.Int64
	failed                     atomic.Int64
	failMu                     sync.Mutex
	firstFail                  error
}

// Run executes (or resumes) the campaign described by the manifest into
// opts.OutDir and returns the run summary. On success the aggregate
// report is written atomically; any permanent cell failure or
// cancellation returns an error after banking all completed cells as
// artifacts, so a later Resume finishes the difference.
func Run(ctx context.Context, manifest Manifest, opts Options) (Summary, error) {
	opts = opts.withDefaults()
	if opts.OutDir == "" {
		return Summary{}, errors.New("campaign: Options.OutDir is required")
	}
	plan, err := Expand(manifest)
	if err != nil {
		return Summary{}, err
	}
	if err := os.MkdirAll(filepath.Join(opts.OutDir, "cells"), 0o755); err != nil {
		return Summary{}, fmt.Errorf("campaign: %w", err)
	}
	if err := pinManifest(plan.Manifest, opts); err != nil {
		return Summary{}, err
	}
	jrn, err := openJournal(opts.OutDir)
	if err != nil {
		return Summary{}, err
	}

	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	r := &runner{man: plan.Manifest, plan: plan, opts: opts, jrn: jrn, cancel: cancel}
	event := "start"
	if opts.Resume {
		event = "resume"
	}
	jrn.log(journalEntry{Event: event, Detail: fmt.Sprintf("%s: %d cells in %d chains",
		plan.Manifest.Name, len(plan.Cells), len(plan.Chains))})

	r.runChains(ctx)

	sum := Summary{
		Planned:  len(plan.Cells),
		Skipped:  int(r.skipped.Load()),
		Executed: int(r.executed.Load()),
		Retries:  int(r.retries.Load()),
		Failed:   int(r.failed.Load()),
	}
	// The journal flushes on every exit path — clean finish, SIGINT
	// cancellation, budget abort — so the last thing a reader sees is
	// what actually happened.
	closeJournal := func(outcome string, detail string) error {
		jrn.log(journalEntry{Event: outcome, Detail: detail})
		return jrn.close()
	}
	if ctx.Err() != nil {
		cause := context.Cause(ctx)
		closeJournal("aborted", cause.Error())
		return sum, cause
	}
	if sum.Failed > 0 {
		r.failMu.Lock()
		first := r.firstFail
		r.failMu.Unlock()
		closeJournal("failed", fmt.Sprintf("%d permanent cell failures", sum.Failed))
		return sum, fmt.Errorf("campaign: %d cells failed permanently (first: %w); completed cells are banked, fix and -resume", sum.Failed, first)
	}

	txt, csv, unsim, err := r.writeReport()
	if err != nil {
		closeJournal("failed", err.Error())
		return sum, err
	}
	sum.ReportText, sum.ReportCSV, sum.Unsimulable = txt, csv, unsim
	jrn.log(journalEntry{Event: "report", Detail: txt})
	if err := closeJournal("done", fmt.Sprintf("skipped %d, executed %d", sum.Skipped, sum.Executed)); err != nil {
		return sum, err
	}
	return sum, nil
}

// pinManifest stores the canonical manifest in the output directory on a
// fresh start and verifies it on any later entry: a directory can only
// ever hold one campaign, and -resume cannot silently re-plan a
// different grid over existing artifacts.
func pinManifest(m Manifest, opts Options) error {
	canon, err := m.MarshalCanonical()
	if err != nil {
		return err
	}
	path := filepath.Join(opts.OutDir, "manifest.json")
	existing, err := os.ReadFile(path)
	switch {
	case err == nil:
		if !bytes.Equal(existing, canon) {
			return fmt.Errorf("campaign: %s holds a different campaign manifest; use a fresh output directory", opts.OutDir)
		}
		if !opts.Resume {
			return fmt.Errorf("campaign: %s already holds this campaign; pass resume to continue it", opts.OutDir)
		}
		return nil
	case os.IsNotExist(err):
		return atomicio.WriteFileBytes(path, canon)
	default:
		return fmt.Errorf("campaign: %w", err)
	}
}

// runChains fans the warm-start chains out over the worker pool. Chains
// are independent; cells within a chain are sequential by construction.
func (r *runner) runChains(ctx context.Context) {
	sem := make(chan struct{}, r.opts.Workers)
	var wg sync.WaitGroup
	for _, chain := range r.plan.Chains {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(chain []*Cell) {
			defer wg.Done()
			defer func() { <-sem }()
			r.runChain(ctx, chain)
		}(chain)
	}
	wg.Wait()
}

// chainSolver abstracts the two warm-start solvers behind the cell loop:
// solve the next cell, or observe a verified artifact so the chain stays
// warm across skipped cells (the service cache-hit idiom).
type chainSolver interface {
	solve(c *Cell) (solveResult, error)
	observe(c *Cell, a *Artifact)
}

// solveResult is the protocol-independent slice of a solver result the
// artifact records. Hetero solves leave T/P zero and fill Active/Plans.
type solveResult struct {
	T          float64
	K          int
	P          float64
	PredictedH float64
	AtPBound   bool
	Warm       bool
	Active     int
	Plans      []hetero.GroupPlan
}

type singleSolver struct{ s *optimize.SweepSolver }

func (ss singleSolver) solve(c *Cell) (solveResult, error) {
	res, err := ss.s.Solve(c.Model)
	if err != nil {
		return solveResult{}, err
	}
	return solveResult{T: res.T, P: res.P, PredictedH: res.Overhead,
		AtPBound: res.AtPBound, Warm: res.Warm}, nil
}

func (ss singleSolver) observe(c *Cell, a *Artifact) {
	ss.s.Observe(c.Model, optimize.PatternResult{
		Solution: core.Solution{T: a.T, P: a.P, Overhead: a.PredictedH},
		AtPBound: a.AtPBound,
	})
}

type mlSolver struct{ s *multilevel.SweepSolver }

func (ms mlSolver) solve(c *Cell) (solveResult, error) {
	res, err := ms.s.Solve(c.Model, multilevel.InMemoryFraction(c.Model, c.Frac))
	if err != nil {
		return solveResult{}, err
	}
	return solveResult{T: res.T, K: res.K, P: res.P, PredictedH: res.PredictedH,
		AtPBound: res.AtPBound, Warm: res.Warm}, nil
}

func (ms mlSolver) observe(c *Cell, a *Artifact) {
	ms.s.Observe(multilevel.PatternResult{
		Plan: multilevel.Plan{
			Pattern:    multilevel.Pattern{T: a.T, K: a.K},
			PredictedH: a.PredictedH,
		},
		P:        a.P,
		AtPBound: a.AtPBound,
	})
}

type heteroSolver struct{ s *hetero.SweepSolver }

func (hs heteroSolver) solve(c *Cell) (solveResult, error) {
	res, err := hs.s.Solve(c.Hetero)
	if err != nil {
		return solveResult{}, err
	}
	atBound := false
	for _, g := range res.Groups {
		atBound = atBound || g.AtPBound
	}
	return solveResult{PredictedH: res.Overhead, AtPBound: atBound,
		Warm: res.Warm, Active: res.Active, Plans: res.Groups}, nil
}

func (hs heteroSolver) observe(c *Cell, a *Artifact) {
	plans := make([]hetero.GroupPlan, len(a.Groups))
	for i, g := range a.Groups {
		plans[i] = hetero.GroupPlan{Group: g.Group, Fraction: g.Fraction,
			T: g.T, P: g.P, GroupOverhead: g.Overhead, AtPBound: g.AtPBound}
	}
	hs.s.Observe(c.Hetero, hetero.PatternResult{
		Groups: plans, Active: a.G, Overhead: a.PredictedH,
	})
}

func (r *runner) newSolver(protocol string) chainSolver {
	if protocol == ProtocolHetero {
		// IntegerP for the same reason as multilevel below: integral
		// per-group allocations keep warm and cold chains on the same
		// cells, and the priced plan stays physical.
		return heteroSolver{hetero.NewSweepSolver(hetero.SweepOptions{
			PatternOptions: hetero.PatternOptions{
				PatternOptions: optimize.PatternOptions{IntegerP: true},
			},
			Cold: r.man.ColdSolve,
		})}
	}
	if protocol == ProtocolMultilevel {
		// IntegerP keeps the joint optimum on integral allocations so
		// warm and cold chains land on bit-identical cells (mirrors the
		// multilevel study).
		return mlSolver{multilevel.NewSweepSolver(multilevel.SweepOptions{
			PatternOptions: multilevel.PatternOptions{IntegerP: true},
			Cold:           r.man.ColdSolve,
		})}
	}
	return singleSolver{optimize.NewSweepSolver(optimize.SweepOptions{Cold: r.man.ColdSolve})}
}

// runChain walks one warm-start chain in axis order: verified artifacts
// are observed and skipped, everything else is solved and priced. A
// permanent cell failure is recorded against the budget but does not
// stop the chain — later cells still make banked, resumable progress.
func (r *runner) runChain(ctx context.Context, chain []*Cell) {
	if len(chain) == 0 {
		return
	}
	solver := r.newSolver(chain[0].Protocol)
	for _, c := range chain {
		if ctx.Err() != nil {
			return
		}
		if art, err := loadArtifact(r.opts.OutDir, c, r.man.Runs, r.man.Patterns); err == nil {
			solver.observe(c, art)
			r.skipped.Add(1)
			r.jrn.log(journalEntry{Event: "skip", Cell: c.Label(), ID: c.ID})
			continue
		} else if !os.IsNotExist(errors.Unwrap(err)) && !os.IsNotExist(err) {
			// A present-but-unverifiable artifact (torn write survivor,
			// hand edit, plan drift) re-runs; say why.
			r.jrn.log(journalEntry{Event: "invalid-artifact", Cell: c.Label(), ID: c.ID, Error: err.Error()})
		}

		res, err := solver.solve(c)
		if err != nil {
			// Solver errors are deterministic (bad search box, invalid
			// model) — retrying cannot help; fail the cell permanently.
			r.recordFailure(c, fmt.Errorf("campaign: solving %s: %w", c.Label(), err))
			continue
		}
		a := Artifact{
			Version:  artifactVersion,
			CellID:   c.ID,
			Label:    c.Label(),
			Seed:     c.Seed,
			Runs:     r.man.Runs,
			Patterns: r.man.Patterns,
			Protocol: c.Protocol,
			T:        res.T, K: res.K, P: res.P,
			PredictedH: res.PredictedH,
			AtPBound:   res.AtPBound,
			Warm:       res.Warm,
		}
		if len(res.Plans) > 0 {
			a.G = res.Active
			a.Groups = make([]HeteroGroupArtifact, len(res.Plans))
			for i, gp := range res.Plans {
				a.Groups[i] = HeteroGroupArtifact{Group: gp.Group, Fraction: gp.Fraction,
					T: gp.T, P: gp.P, Overhead: gp.GroupOverhead, AtPBound: gp.AtPBound}
			}
		}
		if err := r.price(ctx, c, &a); err != nil {
			if ctx.Err() != nil {
				return
			}
			r.recordFailure(c, err)
			continue
		}
		if err := writeArtifact(r.opts.OutDir, a); err != nil {
			r.recordFailure(c, fmt.Errorf("campaign: writing artifact for %s: %w", c.Label(), err))
			continue
		}
		r.executed.Add(1)
		r.jrn.log(journalEntry{Event: "done", Cell: c.Label(), ID: c.ID})
	}
}

// recordFailure books a permanent cell failure and aborts the campaign
// fast once the failure budget is exceeded.
func (r *runner) recordFailure(c *Cell, err error) {
	r.jrn.log(journalEntry{Event: "fail", Cell: c.Label(), ID: c.ID, Error: err.Error()})
	r.failMu.Lock()
	if r.firstFail == nil {
		r.firstFail = err
	}
	r.failMu.Unlock()
	if int(r.failed.Add(1)) > r.opts.FailureBudget {
		r.cancel(fmt.Errorf("campaign: failure budget exceeded (%d > %d): %w",
			r.failed.Load(), r.opts.FailureBudget, err))
	}
}

// price runs the cell's Monte-Carlo phase with retry, backoff and fault
// injection. It fills the artifact's simulated fields; a nil return with
// Unsimulable set is a completed cell whose pattern is off the simulable
// map (error pressure, oversized machine population).
func (r *runner) price(ctx context.Context, c *Cell, a *Artifact) error {
	fault, _ := r.opts.Faults.find(c)
	var last error
	for attempt := 1; attempt <= r.opts.MaxAttempts; attempt++ {
		err := r.attempt(ctx, c, a, fault, attempt)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			// The campaign is shutting down (SIGINT, budget abort):
			// stop immediately, the cell stays un-banked for resume.
			return context.Cause(ctx)
		}
		last = err
		if attempt == r.opts.MaxAttempts {
			break
		}
		r.retries.Add(1)
		delay := r.backoff(c, attempt)
		r.jrn.log(journalEntry{Event: "retry", Cell: c.Label(), ID: c.ID,
			Attempt: attempt, Error: err.Error(), Detail: delay.String()})
		if err := sleepCtx(ctx, delay); err != nil {
			return err
		}
	}
	return fmt.Errorf("campaign: cell %s failed after %d attempts: %w", c.Label(), r.opts.MaxAttempts, last)
}

// backoff is RetryBase·2^(attempt-1) plus up to 100% jitter derived
// deterministically from the cell seed and attempt (splitmix64) — the
// shared internal/backoff schedule — so co-failing cells decorrelate
// without making runs nondeterministic.
func (r *runner) backoff(c *Cell, attempt int) time.Duration {
	return backoff.Delay(r.opts.RetryBase, attempt, c.Seed)
}

// attempt runs one try: injected delay, injected failure, then the real
// simulation under the per-attempt timeout. Panics — injected or real —
// surface as retryable errors.
func (r *runner) attempt(ctx context.Context, c *Cell, a *Artifact, fault Fault, attempt int) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("campaign: cell %s attempt %d panicked: %v", c.Label(), attempt, p)
		}
	}()
	actx := ctx
	if r.opts.CellTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, r.opts.CellTimeout)
		defer cancel()
	}
	if fault.DelayMS > 0 {
		if err := sleepCtx(actx, time.Duration(fault.DelayMS)*time.Millisecond); err != nil {
			return err
		}
	}
	if attempt <= fault.FailAttempts {
		if fault.Panic {
			panic(ErrInjected)
		}
		return fmt.Errorf("%w (attempt %d)", ErrInjected, attempt)
	}
	return r.simulate(actx, c, a)
}

// simulate prices the solved cell on the protocol's simulator with the
// cell's deterministic seed. Per-run streams are seed-derived, so the
// result is independent of scheduling; Workers stays 1 because the
// parallelism budget lives at the chain level.
func (r *runner) simulate(ctx context.Context, c *Cell, a *Artifact) error {
	markUnsimulable := func() {
		a.Unsimulable = true
		a.SimH, a.SimCI = nil, nil
	}
	switch {
	case c.Protocol == ProtocolHetero:
		groups := make([]sim.HeteroGroupRun, len(a.Groups))
		for i, g := range a.Groups {
			m, err := c.Hetero.ActiveModel(g.Group, a.G)
			if err != nil {
				return err
			}
			groups[i] = sim.HeteroGroupRun{Model: m, T: g.T, P: g.P, Fraction: g.Fraction}
		}
		res, err := sim.SimulateHeteroContext(ctx, groups, sim.RunConfig{
			Runs:     r.man.Runs,
			Patterns: r.man.Patterns,
			Seed:     c.Seed,
			Workers:  1,
		})
		if errors.Is(err, sim.ErrErrorPressure) {
			markUnsimulable()
			return nil
		}
		if err != nil {
			return err
		}
		a.SimH, a.SimCI = floatPtr(res.Overhead.Mean), floatPtr(res.Overhead.CI95)
		return nil

	case c.Protocol == ProtocolMultilevel:
		if a.AtPBound {
			// The two-level simulator has no error-pressure escape at
			// extreme allocations (mirrors the multilevel study).
			markUnsimulable()
			return nil
		}
		costs, err := multilevel.SingleLevelCosts(c.Model, a.P, c.Frac)
		if err != nil {
			return err
		}
		lf, ls := c.Model.Rates(a.P)
		s, err := multilevel.NewSimulator(costs, multilevel.Pattern{T: a.T, K: a.K}, lf, ls)
		if err != nil {
			return err
		}
		res, err := s.SimulateContext(ctx, multilevel.CampaignConfig{
			Runs:     r.man.Runs,
			Patterns: r.man.Patterns,
			Seed:     c.Seed,
			Workers:  1,
			HOfP:     c.Model.Profile.Overhead(a.P),
		})
		if err != nil {
			return err
		}
		a.SimH, a.SimCI = floatPtr(res.Overhead.Mean), floatPtr(res.Overhead.CI95)
		return nil

	case c.Dist != nil:
		// Non-memoryless law: replay the exponential-optimal pattern on
		// the machine-level simulator at the rounded integral allocation
		// (the robustness-study pricing protocol).
		procs := int(math.Round(a.P))
		if procs < 1 {
			procs = 1
		}
		if procs > maxMachineProcs {
			markUnsimulable()
			return nil
		}
		a.SimProcs = procs
		res, err := sim.SimulateContext(ctx, c.Model, a.T, float64(procs), sim.RunConfig{
			Runs:     r.man.Runs,
			Patterns: r.man.Patterns,
			Seed:     c.Seed,
			Workers:  1,
			Machine:  true,
			Dist:     c.Dist,
		})
		if errors.Is(err, sim.ErrErrorPressure) {
			markUnsimulable()
			return nil
		}
		if err != nil {
			return err
		}
		a.SimH, a.SimCI = floatPtr(res.Overhead.Mean), floatPtr(res.Overhead.CI95)
		return nil

	default:
		res, err := sim.SimulateContext(ctx, c.Model, a.T, a.P, sim.RunConfig{
			Runs:     r.man.Runs,
			Patterns: r.man.Patterns,
			Seed:     c.Seed,
			Workers:  1,
		})
		if errors.Is(err, sim.ErrErrorPressure) {
			markUnsimulable()
			return nil
		}
		if err != nil {
			return err
		}
		a.SimH, a.SimCI = floatPtr(res.Overhead.Mean), floatPtr(res.Overhead.CI95)
		return nil
	}
}

// sleepCtx sleeps for d or until the context dies, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}
