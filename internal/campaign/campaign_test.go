package campaign

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// testManifest is the small single-level grid most tests run: 2 chains
// (Hera × scenarios 1, 3) × 2 α cells, tiny Monte-Carlo budget.
func testManifest() Manifest {
	return Manifest{
		Name:      "test",
		Seed:      7,
		Runs:      4,
		Patterns:  8,
		Platforms: []string{"Hera"},
		Scenarios: []int{1, 3},
		Axis:      AxisAlpha,
		Values:    []float64{0.1, 0.2},
	}
}

func testOptions(dir string) Options {
	return Options{
		OutDir:    dir,
		Workers:   2,
		RetryBase: time.Millisecond,
	}
}

// mustRun runs a campaign that is expected to complete.
func mustRun(t *testing.T, m Manifest, opts Options) Summary {
	t.Helper()
	sum, err := Run(context.Background(), m, opts)
	if err != nil {
		t.Fatalf("campaign run: %v", err)
	}
	if sum.ReportText == "" || sum.ReportCSV == "" {
		t.Fatalf("completed campaign without report paths: %+v", sum)
	}
	return sum
}

// reportBytes loads both report files for byte-identity comparison.
func reportBytes(t *testing.T, dir string) (txt, csv []byte) {
	t.Helper()
	txt, err := os.ReadFile(filepath.Join(dir, "report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	csv, err = os.ReadFile(filepath.Join(dir, "report.csv"))
	if err != nil {
		t.Fatal(err)
	}
	return txt, csv
}

func assertSameReports(t *testing.T, dirA, dirB string) {
	t.Helper()
	txtA, csvA := reportBytes(t, dirA)
	txtB, csvB := reportBytes(t, dirB)
	if string(txtA) != string(txtB) {
		t.Errorf("report.txt differs:\n--- A ---\n%s\n--- B ---\n%s", txtA, txtB)
	}
	if string(csvA) != string(csvB) {
		t.Errorf("report.csv differs:\n--- A ---\n%s\n--- B ---\n%s", csvA, csvB)
	}
}

func TestExpandDeterministicAndOrderFree(t *testing.T) {
	m := Manifest{
		Name:      "ids",
		Platforms: []string{"Hera", "Atlas"},
		Scenarios: []int{1, 3},
		Axis:      AxisAlpha,
		Values:    []float64{0.1, 0.3},
	}
	p1, err := Expand(m)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Expand(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Cells) != 8 || len(p1.Chains) != 4 {
		t.Fatalf("got %d cells in %d chains, want 8 in 4", len(p1.Cells), len(p1.Chains))
	}
	for i := range p1.Cells {
		if p1.Cells[i].ID != p2.Cells[i].ID || p1.Cells[i].Seed != p2.Cells[i].Seed {
			t.Fatalf("cell %d identity not deterministic", i)
		}
	}

	// Reordering grid dimensions permutes the plan but never changes any
	// cell's identity — the resume contract.
	m.Platforms = []string{"Atlas", "Hera"}
	p3, err := Expand(m)
	if err != nil {
		t.Fatal(err)
	}
	ids := func(p *Plan) map[string]uint64 {
		out := make(map[string]uint64)
		for _, c := range p.Cells {
			out[c.ID] = c.Seed
		}
		return out
	}
	a, b := ids(p1), ids(p3)
	if len(a) != len(b) {
		t.Fatalf("id sets differ in size: %d vs %d", len(a), len(b))
	}
	for id, seed := range a {
		if b[id] != seed {
			t.Errorf("cell %s changed identity under reordering", id)
		}
	}

	// A different master seed moves every cell's stream but no ID.
	m.Seed = 99
	p4, err := Expand(m)
	if err != nil {
		t.Fatal(err)
	}
	for id, seed := range ids(p4) {
		if _, ok := b[id]; !ok {
			t.Errorf("cell ID %s changed under reseeding", id)
		}
		if b[id] == seed {
			t.Errorf("cell %s seed did not move with the master seed", id)
		}
	}
}

func TestManifestValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Manifest)
	}{
		{"unknown platform", func(m *Manifest) { m.Platforms = []string{"Tsubame"} }},
		{"bad scenario", func(m *Manifest) { m.Scenarios = []int{7} }},
		{"axis without values", func(m *Manifest) { m.Values = nil }},
		{"values without axis", func(m *Manifest) { m.Axis = AxisNone }},
		{"unknown axis", func(m *Manifest) { m.Axis = "temperature" }},
		{"negative lambda value", func(m *Manifest) { m.Axis = AxisLambda; m.Values = []float64{-1e-9} }},
		{"alpha fixed and swept", func(m *Manifest) { a := 0.3; m.Alpha = &a }},
		{"exponential with shapes", func(m *Manifest) {
			m.Distributions = []DistSpec{{Name: "exponential", Shapes: []float64{0.7}}}
		}},
		{"weibull without shapes", func(m *Manifest) { m.Distributions = []DistSpec{{Name: "weibull"}} }},
		{"single-level with fractions", func(m *Manifest) {
			m.Protocols = []ProtocolSpec{{Name: ProtocolSingle, InMemFractions: []float64{0.1}}}
		}},
		{"multilevel without fractions", func(m *Manifest) {
			m.Protocols = []ProtocolSpec{{Name: ProtocolMultilevel}}
		}},
		{"multilevel with weibull", func(m *Manifest) {
			m.Protocols = []ProtocolSpec{{Name: ProtocolMultilevel, InMemFractions: []float64{0.1}}}
			m.Distributions = []DistSpec{{Name: "weibull", Shapes: []float64{0.7}}}
		}},
		{"frac axis with single protocol", func(m *Manifest) {
			m.Axis = AxisFraction
			m.Values = []float64{0.1, 0.5}
		}},
		{"shape axis with exponential", func(m *Manifest) {
			m.Axis = AxisShape
			m.Values = []float64{0.7}
			m.Distributions = []DistSpec{{Name: "exponential"}}
		}},
		{"zero runs", func(m *Manifest) { m.Runs = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := testManifest()
			tc.mut(&m)
			if err := m.Validate(); err == nil {
				t.Errorf("manifest accepted: %+v", m)
			}
		})
	}
}

func TestManifestJSONRoundTrip(t *testing.T) {
	m := testManifest()
	buf, err := m.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(strings.NewReader(string(buf)))
	if err != nil {
		t.Fatal(err)
	}
	buf2, err := got.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(buf2) {
		t.Errorf("canonical JSON not stable:\n%s\nvs\n%s", buf, buf2)
	}
	if _, err := ReadManifest(strings.NewReader(`{"nope": 1}`)); err == nil {
		t.Error("unknown manifest field accepted")
	}
}

func TestPresetsExpand(t *testing.T) {
	names := PresetNames()
	if len(names) < 6 {
		t.Fatalf("presets missing: %v", names)
	}
	for _, name := range names {
		m, err := Preset(name)
		if err != nil {
			t.Fatalf("preset %s: %v", name, err)
		}
		p, err := Expand(m)
		if err != nil {
			t.Fatalf("preset %s does not expand: %v", name, err)
		}
		if len(p.Cells) == 0 {
			t.Errorf("preset %s expands to zero cells", name)
		}
	}
	if _, err := Preset("no-such"); err == nil {
		t.Error("unknown preset accepted")
	}
}

// TestResumeAfterCrashByteIdentical is the headline contract: damage a
// completed campaign the way a SIGKILL would — one artifact torn
// mid-write, one missing entirely — and resume; the repaired campaign's
// reports must be byte-identical to an undisturbed run.
func TestResumeAfterCrashByteIdentical(t *testing.T) {
	m := testManifest()
	clean, damaged := t.TempDir(), t.TempDir()
	mustRun(t, m, testOptions(clean))
	sumB := mustRun(t, m, testOptions(damaged))
	if sumB.Executed != sumB.Planned {
		t.Fatalf("fresh run executed %d of %d", sumB.Executed, sumB.Planned)
	}

	// Emulate the crash: truncate one artifact mid-JSON (torn write
	// survivor) and delete another; also delete the reports.
	cells, err := filepath.Glob(filepath.Join(damaged, "cells", "*.json"))
	if err != nil || len(cells) < 2 {
		t.Fatalf("artifacts: %v (%d)", err, len(cells))
	}
	full, err := os.ReadFile(cells[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cells[0], full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(cells[1]); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(damaged, "report.txt"))
	os.Remove(filepath.Join(damaged, "report.csv"))

	opts := testOptions(damaged)
	opts.Resume = true
	sum := mustRun(t, m, opts)
	if sum.Executed != 2 || sum.Skipped != sum.Planned-2 {
		t.Errorf("resume executed %d / skipped %d, want 2 / %d", sum.Executed, sum.Skipped, sum.Planned-2)
	}
	assertSameReports(t, clean, damaged)
}

// TestRetryRecoversTransientFaults proves the backoff path: injected
// errors and panics below the attempt limit recover, and the report is
// still byte-identical to a fault-free run.
func TestRetryRecoversTransientFaults(t *testing.T) {
	m := testManifest()
	clean, faulty := t.TempDir(), t.TempDir()
	mustRun(t, m, testOptions(clean))

	p, err := Expand(m)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions(faulty)
	opts.MaxAttempts = 3
	opts.Faults = FaultPlan{
		p.Cells[0].ID:      {FailAttempts: 2},
		p.Cells[3].Label(): {FailAttempts: 1, Panic: true},
	}
	sum := mustRun(t, m, opts)
	if sum.Retries != 3 {
		t.Errorf("retries = %d, want 3", sum.Retries)
	}
	if sum.Failed != 0 {
		t.Errorf("failed = %d, want 0", sum.Failed)
	}
	assertSameReports(t, clean, faulty)
}

// TestFailureBudget proves fail-fast: a cell failing beyond the attempt
// limit with a zero budget aborts the campaign, banked cells survive,
// and a fault-free resume completes to the byte-identical report.
func TestFailureBudget(t *testing.T) {
	m := testManifest()
	clean, faulty := t.TempDir(), t.TempDir()
	mustRun(t, m, testOptions(clean))

	p, err := Expand(m)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions(faulty)
	opts.MaxAttempts = 2
	// Fail the second cell of chain 0 permanently: cell 0 banks first,
	// proving partial progress survives a budget abort.
	opts.Faults = FaultPlan{p.Cells[1].ID: {FailAttempts: 99}}
	_, err = Run(context.Background(), m, opts)
	if err == nil {
		t.Fatal("budget-exceeded campaign reported success")
	}
	if !errors.Is(err, ErrInjected) && !strings.Contains(err.Error(), "failure budget") {
		t.Errorf("unexpected budget error: %v", err)
	}
	if _, err := os.Stat(filepath.Join(faulty, "report.txt")); !os.IsNotExist(err) {
		t.Error("failed campaign left a report behind")
	}

	opts.Faults = nil
	opts.Resume = true
	sum := mustRun(t, m, opts)
	if sum.Skipped == 0 {
		t.Error("resume after budget abort skipped nothing; no progress was banked")
	}
	assertSameReports(t, clean, faulty)
}

// TestBudgetToleratesFailuresWithoutReport: failures within the budget
// do not abort outstanding work, but still fail the campaign (no report
// from an incomplete grid).
func TestBudgetToleratesFailuresWithoutReport(t *testing.T) {
	m := testManifest()
	dir := t.TempDir()
	p, err := Expand(m)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions(dir)
	opts.MaxAttempts = 1
	opts.FailureBudget = 1
	opts.Faults = FaultPlan{p.Cells[0].ID: {FailAttempts: 99}}
	sum, err := Run(context.Background(), m, opts)
	if err == nil {
		t.Fatal("campaign with a failed cell reported success")
	}
	if sum.Failed != 1 {
		t.Errorf("failed = %d, want 1", sum.Failed)
	}
	// The budget kept the rest of the grid running.
	if sum.Executed != sum.Planned-1 {
		t.Errorf("executed = %d, want %d", sum.Executed, sum.Planned-1)
	}
}

// TestCellTimeout proves the deadline path: a delay fault longer than
// the per-attempt timeout fails the cell permanently; clearing the fault
// and resuming completes the campaign.
func TestCellTimeout(t *testing.T) {
	m := testManifest()
	clean, slow := t.TempDir(), t.TempDir()
	mustRun(t, m, testOptions(clean))

	p, err := Expand(m)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions(slow)
	opts.MaxAttempts = 2
	opts.CellTimeout = 10 * time.Millisecond
	opts.Faults = FaultPlan{p.Cells[2].ID: {DelayMS: 300}}
	if _, err := Run(context.Background(), m, opts); err == nil {
		t.Fatal("timed-out campaign reported success")
	}

	opts.Faults = nil
	opts.CellTimeout = 0
	opts.Resume = true
	mustRun(t, m, opts)
	assertSameReports(t, clean, slow)
}

// TestCancellation proves the SIGINT path: cancelling the context
// mid-campaign aborts promptly with the cancellation cause, keeps the
// journal readable, and a resume completes byte-identically.
func TestCancellation(t *testing.T) {
	m := testManifest()
	clean, interrupted := t.TempDir(), t.TempDir()
	mustRun(t, m, testOptions(clean))

	ctx, cancel := context.WithCancel(context.Background())
	opts := testOptions(interrupted)
	opts.Workers = 1
	// Slow every cell down enough that the cancel lands mid-campaign.
	opts.Faults = FaultPlan{"*": {DelayMS: 50}}
	go func() {
		time.Sleep(75 * time.Millisecond)
		cancel()
	}()
	_, err := Run(ctx, m, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign returned %v", err)
	}
	if _, err := os.Stat(filepath.Join(interrupted, "journal.ndjson")); err != nil {
		t.Fatalf("no journal after cancellation: %v", err)
	}

	opts.Faults = nil
	opts.Resume = true
	sum, err := Run(context.Background(), m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Skipped+sum.Executed != sum.Planned {
		t.Errorf("resume accounted %d+%d of %d cells", sum.Skipped, sum.Executed, sum.Planned)
	}
	assertSameReports(t, clean, interrupted)
}

// TestManifestPinning: a directory holds exactly one campaign, and
// re-entering it requires Resume.
func TestManifestPinning(t *testing.T) {
	m := testManifest()
	dir := t.TempDir()
	mustRun(t, m, testOptions(dir))

	if _, err := Run(context.Background(), m, testOptions(dir)); err == nil {
		t.Error("re-running into a campaign directory without Resume succeeded")
	}

	other := m
	other.Seed = 1234
	opts := testOptions(dir)
	opts.Resume = true
	if _, err := Run(context.Background(), other, opts); err == nil {
		t.Error("resuming with a different manifest succeeded")
	}

	// Resuming a completed campaign is a no-op that rewrites the report.
	sum := mustRun(t, m, opts)
	if sum.Executed != 0 || sum.Skipped != sum.Planned {
		t.Errorf("resume of a complete campaign executed %d cells", sum.Executed)
	}
}

// TestMultilevelAndWeibullCells exercises the two non-default pricing
// paths end to end, including crash/resume byte-identity.
func TestMultilevelAndWeibullCells(t *testing.T) {
	for _, tc := range []struct {
		name string
		man  Manifest
	}{
		{"multilevel", Manifest{
			Name:      "ml",
			Seed:      11,
			Runs:      3,
			Patterns:  5,
			Platforms: []string{"Hera"},
			Scenarios: []int{1},
			Protocols: []ProtocolSpec{{Name: ProtocolMultilevel}},
			Axis:      AxisFraction,
			Values:    []float64{1.0 / 15, 0.5},
		}},
		{"weibull", Manifest{
			Name:          "wb",
			Seed:          13,
			Runs:          2,
			Patterns:      4,
			Platforms:     []string{"Hera"},
			Scenarios:     []int{1},
			Distributions: []DistSpec{{Name: "weibull"}},
			Axis:          AxisShape,
			Values:        []float64{0.7, 1.5},
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			clean, crashed := t.TempDir(), t.TempDir()
			mustRun(t, tc.man, testOptions(clean))
			mustRun(t, tc.man, testOptions(crashed))

			cells, err := filepath.Glob(filepath.Join(crashed, "cells", "*.json"))
			if err != nil || len(cells) == 0 {
				t.Fatalf("artifacts: %v", err)
			}
			if err := os.Remove(cells[0]); err != nil {
				t.Fatal(err)
			}
			opts := testOptions(crashed)
			opts.Resume = true
			sum := mustRun(t, tc.man, opts)
			if sum.Executed != 1 {
				t.Errorf("resume executed %d cells, want 1", sum.Executed)
			}
			assertSameReports(t, clean, crashed)
		})
	}
}

func TestFaultPlanJSON(t *testing.T) {
	fp, err := ReadFaultPlan(strings.NewReader(
		`{"*": {"delay_ms": 5}, "abc": {"fail_attempts": 2, "panic": true}}`))
	if err != nil {
		t.Fatal(err)
	}
	c := &Cell{ID: "abc"}
	f, ok := fp.find(c)
	if !ok || f.FailAttempts != 2 || !f.Panic {
		t.Errorf("specific fault not found: %+v %v", f, ok)
	}
	f, ok = fp.find(&Cell{ID: "zzz"})
	if !ok || f.DelayMS != 5 {
		t.Errorf("wildcard fault not found: %+v %v", f, ok)
	}
	if _, err := ReadFaultPlan(strings.NewReader(`{"x": {"fail_attempts": -1}}`)); err == nil {
		t.Error("negative fault accepted")
	}
	if _, err := ReadFaultPlan(strings.NewReader(`{"x": {"explode": true}}`)); err == nil {
		t.Error("unknown fault field accepted")
	}
}
