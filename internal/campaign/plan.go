package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"strconv"

	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/experiments"
	"amdahlyd/internal/failures"
	"amdahlyd/internal/hetero"
	"amdahlyd/internal/platform"
)

// Cell is one planned grid point: the resolved model, the failure law it
// is priced under, the protocol, and its place in a warm-start chain.
type Cell struct {
	// ID is the stable identity: a digest of the canonical model key
	// (core.Model.CacheKey), the distribution key (failures.CacheKey),
	// the protocol coordinates and the Monte-Carlo budget. Adding,
	// removing or reordering grid dimensions never changes another
	// cell's ID — which is what lets a resumed campaign match artifacts
	// against a re-expanded plan.
	ID string
	// Chain and Index locate the cell in its warm-start solver chain.
	Chain, Index int
	// Grid coordinates, for reports and journals.
	Platform string
	Scenario costmodel.Scenario
	Alpha    float64
	Downtime float64
	// Lambda is the effective λ_ind (the platform's, or the axis value).
	Lambda   float64
	DistName string
	Shape    float64 // NaN for the shapeless exponential law
	Protocol string
	Frac     float64 // NaN for single-level
	// Comm is the effective inter-group comm coefficient (NaN unless the
	// cell runs the hetero protocol).
	Comm float64
	// X is the axis coordinate (NaN for a pure grid).
	X float64
	// Seed is the cell's deterministic Monte-Carlo seed, derived from
	// the manifest seed and the cell's canonical identity.
	Seed uint64

	// Model is the resolved exponential planning model the solve runs
	// on; Dist is nil for the exponential fast path, else the calibrated
	// law the Monte-Carlo phase prices under. Hetero cells carry the
	// compiled topology in Hetero instead (Model stays zero).
	Model  core.Model
	Hetero core.HeteroModel
	Dist   failures.Distribution
}

// Plan is the deterministic expansion of a manifest: Cells in planning
// order, grouped into warm-start chains (cells identical except for the
// axis coordinate, in axis order).
type Plan struct {
	Manifest Manifest
	Cells    []*Cell
	// Chains groups Cells by chain index; every cell appears exactly
	// once, chains are contiguous in planning order.
	Chains [][]*Cell
}

// maxPlanCells bounds the grid expansion: a manifest that multiplies out
// beyond this is almost certainly a typo, and the executor would
// otherwise happily create a million artifact files.
const maxPlanCells = 1 << 16

// Expand expands the manifest into its deterministic cell grid. The
// planning order is platforms → scenarios → distributions(shape) →
// protocols(fraction) → axis values; the innermost axis run forms one
// warm-start chain.
func Expand(manifest Manifest) (*Plan, error) {
	if err := manifest.Validate(); err != nil {
		return nil, err
	}
	m := manifest.withDefaults()
	p := &Plan{Manifest: m}

	type distInstance struct {
		name  string
		shape float64 // NaN = exponential
	}
	var dists []distInstance
	for _, d := range m.Distributions {
		switch {
		case failures.IsExponentialName(d.Name):
			dists = append(dists, distInstance{name: "exponential", shape: math.NaN()})
		case m.Axis == AxisShape:
			// One instance per axis value, materialized by the chain loop.
			dists = append(dists, distInstance{name: d.Name, shape: math.NaN()})
		default:
			for _, s := range d.Shapes {
				dists = append(dists, distInstance{name: d.Name, shape: s})
			}
		}
	}
	type protoInstance struct {
		name string
		frac float64 // NaN = single-level
	}
	var protos []protoInstance
	for _, pr := range m.Protocols {
		switch {
		case pr.Name == ProtocolSingle:
			protos = append(protos, protoInstance{name: ProtocolSingle, frac: math.NaN()})
		case pr.Name == ProtocolHetero:
			protos = append(protos, protoInstance{name: ProtocolHetero, frac: math.NaN()})
		case m.Axis == AxisFraction:
			protos = append(protos, protoInstance{name: ProtocolMultilevel, frac: math.NaN()})
		default:
			for _, f := range pr.InMemFractions {
				protos = append(protos, protoInstance{name: ProtocolMultilevel, frac: f})
			}
		}
	}
	xs := m.Values
	if m.Axis == AxisNone {
		xs = []float64{math.NaN()}
	}

	isHetero := m.heteroOnly()
	for _, plName := range m.Platforms {
		var basePl platform.Platform
		if isHetero {
			// The pseudo-platform carries only the topology's name; the
			// group parameters live in m.Topology.
			basePl.Name = plName
		} else {
			var err error
			basePl, err = platform.Lookup(plName)
			if err != nil {
				return nil, fmt.Errorf("campaign: %w", err)
			}
		}
		for _, scn := range m.Scenarios {
			sc := costmodel.Scenario(scn)
			for _, di := range dists {
				for _, pi := range protos {
					chain := make([]*Cell, 0, len(xs))
					for xi, x := range xs {
						cell := &Cell{
							Chain:    len(p.Chains),
							Index:    xi,
							Platform: basePl.Name,
							Scenario: sc,
							Alpha:    m.alpha(),
							Downtime: m.downtime(),
							DistName: di.name,
							Shape:    di.shape,
							Protocol: pi.name,
							Frac:     pi.frac,
							Comm:     math.NaN(),
							X:        x,
						}
						pl := basePl
						switch m.Axis {
						case AxisAlpha:
							cell.Alpha = x
						case AxisDowntime:
							cell.Downtime = x
						case AxisLambda:
							pl = pl.WithLambda(x)
						case AxisShape:
							cell.Shape = x
						case AxisFraction:
							cell.Frac = x
						}
						var err error
						if isHetero {
							tp := *m.Topology
							if m.Axis == AxisComm {
								tp.Comm = x
							}
							cell.Comm = tp.Comm
							cell.Lambda = math.NaN()
							//lint:allow frozenloop plan-time compile, one per grid cell's distinct topology
							cell.Hetero, err = hetero.CompileTopology(tp, sc, cell.Alpha, cell.Downtime)
							if err != nil {
								return nil, fmt.Errorf("campaign: cell %s/%v/%s=%g: %w",
									cell.Platform, sc, m.Axis, x, err)
							}
						} else {
							cell.Lambda = pl.LambdaInd
							cell.Model, err = experiments.BuildModel(pl, sc, cell.Alpha, cell.Downtime)
							if err != nil {
								return nil, fmt.Errorf("campaign: cell %s/%v/%s=%g: %w",
									cell.Platform, sc, m.Axis, x, err)
							}
							if cell.DistName != "exponential" {
								cell.Dist, err = failures.ParseDistribution(cell.DistName, cell.Shape, pl.LambdaInd)
								if err != nil {
									return nil, fmt.Errorf("campaign: %w", err)
								}
							}
						}
						if err := cell.identify(m); err != nil {
							return nil, err
						}
						chain = append(chain, cell)
						p.Cells = append(p.Cells, cell)
						if len(p.Cells) > maxPlanCells {
							return nil, fmt.Errorf("campaign: grid exceeds %d cells", maxPlanCells)
						}
					}
					p.Chains = append(p.Chains, chain)
				}
			}
		}
	}
	seen := make(map[string]*Cell, len(p.Cells))
	for _, c := range p.Cells {
		if dup, ok := seen[c.ID]; ok {
			return nil, fmt.Errorf("campaign: duplicate grid cell %s (%s/%v and %s/%v price the same configuration)",
				c.ID, dup.Platform, dup.Scenario, c.Platform, c.Scenario)
		}
		seen[c.ID] = c
	}
	return p, nil
}

// identify derives the cell's stable ID and seed from the canonical
// model/distribution keys plus the protocol and budget coordinates —
// never from grid position, so IDs survive reordering and grid growth.
func (c *Cell) identify(m Manifest) error {
	var mk string
	var err error
	if len(c.Hetero.Groups) > 0 {
		mk, err = c.Hetero.CacheKey() // versioned hg1| key, disjoint from Model keys
	} else {
		mk, err = c.Model.CacheKey()
	}
	if err != nil {
		return fmt.Errorf("campaign: keying cell %s/%v: %w", c.Platform, c.Scenario, err)
	}
	material := "cell1|" + mk +
		"|dist=" + failures.CacheKey(c.Dist) +
		"|proto=" + c.Protocol +
		"|frac=" + core.FormatFloatKey(c.Frac) +
		"|budget=" + strconv.Itoa(m.Runs) + "x" + strconv.Itoa(m.Patterns) +
		"|cold=" + strconv.FormatBool(m.ColdSolve)
	sum := sha256.Sum256([]byte(material))
	c.ID = hex.EncodeToString(sum[:8])
	// The seed folds the master seed into an FNV-1a digest of the same
	// material (the sha digest would do too; FNV keeps the derivation
	// identical in spirit to the experiment drivers' cellSeed).
	h := uint64(1469598103934665603)
	for i := 0; i < len(material); i++ {
		h ^= uint64(material[i])
		h *= 1099511628211
	}
	c.Seed = h ^ m.Seed
	return nil
}

// Label is the human-readable cell coordinate used in journals and
// error messages.
func (c *Cell) Label() string {
	s := fmt.Sprintf("%s/%v/%s", c.Platform, c.Scenario, c.Protocol)
	if !math.IsNaN(c.Frac) {
		s += fmt.Sprintf("/frac=%g", c.Frac)
	}
	if c.DistName != "exponential" {
		s += fmt.Sprintf("/%s(k=%g)", c.DistName, c.Shape)
	}
	if !math.IsNaN(c.Comm) {
		s += fmt.Sprintf("/comm=%g", c.Comm)
	}
	if !math.IsNaN(c.X) {
		s += fmt.Sprintf("/x=%g", c.X)
	}
	return s
}
