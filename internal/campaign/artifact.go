package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"amdahlyd/internal/atomicio"
)

// artifactVersion versions the on-disk cell schema; a resumed campaign
// re-runs (never misreads) cells written by an incompatible executor.
const artifactVersion = 1

// Artifact is the durable result of one cell: everything the aggregate
// report needs, plus the identity material (cell ID, seed, budget) a
// resume verifies before trusting the file. Simulated quantities are
// pointers because encoding/json cannot carry NaN: nil means NaN, which
// only occurs on unsimulable cells.
type Artifact struct {
	Version  int    `json:"version"`
	CellID   string `json:"cell_id"`
	Label    string `json:"label"`
	Seed     uint64 `json:"seed"`
	Runs     int    `json:"runs"`
	Patterns int    `json:"patterns"`
	Protocol string `json:"protocol"`

	// Solve phase: the (T[, K], P) optimum and its model prediction.
	// Hetero cells leave T/P zero and record the per-group plan in
	// Groups instead (additive, omitempty: older artifacts still verify).
	T          float64 `json:"t"`
	K          int     `json:"k,omitempty"`
	P          float64 `json:"p"`
	PredictedH float64 `json:"predicted_h"`
	AtPBound   bool    `json:"at_p_bound,omitempty"`
	Warm       bool    `json:"warm,omitempty"`

	// Hetero solve phase: number of active groups and their plans.
	G      int                   `json:"g,omitempty"`
	Groups []HeteroGroupArtifact `json:"groups,omitempty"`

	// Monte-Carlo phase. SimProcs is the integral allocation the
	// machine-level simulator priced (0 for the pattern-level path).
	SimProcs    int      `json:"sim_procs,omitempty"`
	Unsimulable bool     `json:"unsimulable,omitempty"`
	SimH        *float64 `json:"sim_h"`
	SimCI       *float64 `json:"sim_ci"`

	// Checksum is the hex SHA-256 of the artifact's canonical JSON with
	// this field empty; a truncated or hand-edited file never verifies.
	Checksum string `json:"checksum"`
}

// HeteroGroupArtifact is one group's share of a hetero cell's joint
// optimum: which group, its work fraction, and its own (T, P) pattern.
type HeteroGroupArtifact struct {
	Group    int     `json:"group"`
	Fraction float64 `json:"fraction"`
	T        float64 `json:"t"`
	P        float64 `json:"p"`
	Overhead float64 `json:"overhead"`
	AtPBound bool    `json:"at_p_bound,omitempty"`
}

// floatPtr boxes v for the JSON artifact, mapping NaN to nil.
func floatPtr(v float64) *float64 {
	if math.IsNaN(v) {
		return nil
	}
	return &v
}

// floatVal unboxes a JSON field, mapping nil back to NaN.
func floatVal(p *float64) float64 {
	if p == nil {
		return math.NaN()
	}
	return *p
}

// SimOverhead returns the simulated overhead and CI95 half-width (NaN,
// NaN for unsimulable cells).
func (a *Artifact) SimOverhead() (mean, ci float64) {
	return floatVal(a.SimH), floatVal(a.SimCI)
}

// checksum computes the canonical digest: the indented JSON with the
// Checksum field cleared.
func (a Artifact) checksum() (string, error) {
	a.Checksum = ""
	buf, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return "", fmt.Errorf("campaign: %w", err)
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:]), nil
}

// artifactPath is the cell's file under the campaign output directory.
func artifactPath(outDir, cellID string) string {
	return filepath.Join(outDir, "cells", cellID+".json")
}

// writeArtifact seals and atomically writes the artifact: the file is
// either absent, the previous complete version, or the new complete
// version — never a torn write a resume could trust.
func writeArtifact(outDir string, a Artifact) error {
	sum, err := a.checksum()
	if err != nil {
		return err
	}
	a.Checksum = sum
	buf, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	return atomicio.WriteFileBytes(artifactPath(outDir, a.CellID), append(buf, '\n'))
}

// loadArtifact reads and verifies a cell artifact against the planned
// cell. Any mismatch — missing file, bad JSON, failed checksum, stale
// version, or an identity/budget drift — returns an error; the executor
// treats every such cell as not yet run.
func loadArtifact(outDir string, c *Cell, runs, patterns int) (*Artifact, error) {
	buf, err := os.ReadFile(artifactPath(outDir, c.ID))
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(buf, &a); err != nil {
		return nil, fmt.Errorf("campaign: artifact %s: %w", c.ID, err)
	}
	if a.Version != artifactVersion {
		return nil, fmt.Errorf("campaign: artifact %s: version %d, want %d", c.ID, a.Version, artifactVersion)
	}
	want, err := a.checksum()
	if err != nil {
		return nil, err
	}
	if a.Checksum != want {
		return nil, fmt.Errorf("campaign: artifact %s: checksum mismatch", c.ID)
	}
	if a.CellID != c.ID || a.Seed != c.Seed || a.Runs != runs || a.Patterns != patterns || a.Protocol != c.Protocol {
		return nil, fmt.Errorf("campaign: artifact %s: identity drift (plan changed under the output directory)", c.ID)
	}
	return &a, nil
}
