package campaign

import (
	"fmt"
	"io"
	"math"
	"path/filepath"
	"strconv"

	"amdahlyd/internal/atomicio"
	"amdahlyd/internal/report"
)

// writeReport aggregates all artifacts into report.txt (human table) and
// report.csv (long-form data), atomically. Both are pure functions of
// the plan and the artifacts — no timestamps, no skip/execute counters —
// so a resumed campaign reproduces them byte for byte.
func (r *runner) writeReport() (txt, csv string, unsim int, err error) {
	arts := make([]*Artifact, len(r.plan.Cells))
	for i, c := range r.plan.Cells {
		a, err := loadArtifact(r.opts.OutDir, c, r.man.Runs, r.man.Patterns)
		if err != nil {
			return "", "", 0, fmt.Errorf("campaign: aggregating: %w", err)
		}
		if a.Unsimulable {
			unsim++
		}
		arts[i] = a
	}
	txt = filepath.Join(r.opts.OutDir, "report.txt")
	if err := atomicio.WriteFile(txt, func(w io.Writer) error {
		return renderReport(w, r.plan, arts, unsim)
	}); err != nil {
		return "", "", 0, err
	}
	csv = filepath.Join(r.opts.OutDir, "report.csv")
	if err := atomicio.WriteFile(csv, func(w io.Writer) error {
		return writeReportCSV(w, r.plan, arts)
	}); err != nil {
		return "", "", 0, err
	}
	return txt, csv, unsim, nil
}

func renderReport(w io.Writer, p *Plan, arts []*Artifact, unsim int) error {
	if _, err := fmt.Fprintf(w, "Campaign %s — %d cells (%d chains, %d unsimulable), seed %d, %d×%d budget\n\n",
		p.Manifest.Name, len(p.Cells), len(p.Chains), unsim,
		p.Manifest.Seed, p.Manifest.Runs, p.Manifest.Patterns); err != nil {
		return err
	}
	tb := report.NewTable("Aggregate results",
		"cell", "T*", "K*", "P*", "H pred", "H sim", "CI95")
	for i, a := range arts {
		c := p.Cells[i]
		k := "-"
		tCol, pCol := report.Fmt(a.T), report.Fmt(a.P)
		switch c.Protocol {
		case ProtocolMultilevel:
			k = strconv.Itoa(a.K)
		case ProtocolHetero:
			// One row still summarizes the joint plan: active group count
			// in the K column, total allocation in P*; per-group (T, P)
			// live in the cell artifact.
			k = "G" + strconv.Itoa(a.G)
			tCol = "-"
			pCol = report.Fmt(heteroTotalP(a))
		}
		simH, simCI := a.SimOverhead()
		if err := tb.AddRow(c.Label(), tCol, k, pCol,
			report.Fmt(a.PredictedH), report.Fmt(simH), report.Fmt(simCI)); err != nil {
			return err
		}
	}
	if err := tb.Render(w); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// heteroTotalP sums the per-group allocations of a hetero artifact.
func heteroTotalP(a *Artifact) float64 {
	var sum float64
	for _, g := range a.Groups {
		sum += g.P
	}
	return sum
}

// csvFloat renders a float at full round-trip precision; NaN (axis or
// simulated quantities that do not apply) renders empty.
func csvFloat(v float64) string {
	if math.IsNaN(v) {
		return ""
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeReportCSV(w io.Writer, p *Plan, arts []*Artifact) error {
	if _, err := io.WriteString(w,
		"cell_id,platform,scenario,protocol,dist,shape,frac,comm,alpha,downtime,lambda,axis,x,t,k,p,predicted_h,sim_h,sim_ci,unsimulable\n"); err != nil {
		return err
	}
	for i, a := range arts {
		c := p.Cells[i]
		k := ""
		t, pv := csvFloat(a.T), csvFloat(a.P)
		switch c.Protocol {
		case ProtocolMultilevel:
			k = strconv.Itoa(a.K)
		case ProtocolHetero:
			// k carries the active group count; t has no single value, p
			// is the total allocation across groups.
			k = strconv.Itoa(a.G)
			t = ""
			pv = csvFloat(heteroTotalP(a))
		}
		simH, simCI := a.SimOverhead()
		unsimulable := ""
		if a.Unsimulable {
			unsimulable = "1"
		}
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s\n",
			c.ID, c.Platform, int(c.Scenario), c.Protocol, c.DistName,
			csvFloat(c.Shape), csvFloat(c.Frac), csvFloat(c.Comm),
			csvFloat(c.Alpha), csvFloat(c.Downtime),
			csvFloat(c.Lambda), p.Manifest.Axis, csvFloat(c.X),
			t, k, pv, csvFloat(a.PredictedH),
			csvFloat(simH), csvFloat(simCI), unsimulable); err != nil {
			return err
		}
	}
	return nil
}
