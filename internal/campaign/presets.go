package campaign

import (
	"fmt"
	"sort"
	"strings"

	"amdahlyd/internal/experiments"
	"amdahlyd/internal/platform"
)

// presets maps the five hand-written study drivers onto campaign
// manifests — the ROADMAP routing rule made concrete: grid-shaped
// experiment work is a config file, not a new driver. Axis values come
// from the drivers' own exported defaults, so a preset campaign prices
// the same grid the corresponding figure does.
var presets = map[string]func() Manifest{
	// Fig. 4: sequential-fraction sweep, scenarios 1/3/5, all platforms.
	"sweep-alpha": func() Manifest {
		return Manifest{
			Name:   "sweep-alpha",
			Axis:   AxisAlpha,
			Values: experiments.DefaultFig4Alphas(),
		}
	},
	// Figs. 5–6: error-rate sweep.
	"sweep-lambda": func() Manifest {
		return Manifest{
			Name:   "sweep-lambda",
			Axis:   AxisLambda,
			Values: experiments.DefaultLambdas(),
		}
	},
	// Fig. 7: downtime sweep.
	"sweep-downtime": func() Manifest {
		return Manifest{
			Name:   "sweep-downtime",
			Axis:   AxisDowntime,
			Values: experiments.DefaultFig7Downtimes(),
		}
	},
	// Robustness study: Weibull shape axis, all six scenarios, machine-
	// level pricing of the exponential-optimal patterns.
	"robustness": func() Manifest {
		return Manifest{
			Name:          "robustness",
			Platforms:     []string{"Hera"},
			Scenarios:     []int{1, 2, 3, 4, 5, 6},
			Distributions: []DistSpec{{Name: "weibull"}},
			Axis:          AxisShape,
			Values:        experiments.DefaultRobustnessShapes,
		}
	},
	// Multilevel study: in-memory cost-fraction axis, joint (T, K, P)
	// optima.
	"multilevel": func() Manifest {
		return Manifest{
			Name:      "multilevel",
			Platforms: []string{"Hera"},
			Protocols: []ProtocolSpec{{Name: ProtocolMultilevel}},
			Axis:      AxisFraction,
			Values:    experiments.DefaultMultilevelFractions,
		}
	},
	// Heterogeneous study: Hera CPU tiles plus a faster low-reliability
	// accelerator group, comm-coefficient axis, joint per-group optima.
	"hetero": func() Manifest {
		tp := experiments.HeteroStudyTopology(platform.Hera(), 0, 0.25)
		return Manifest{
			Name:      "hetero",
			Topology:  &tp,
			Protocols: []ProtocolSpec{{Name: ProtocolHetero}},
			Axis:      AxisComm,
			Values:    experiments.DefaultHeteroComms,
		}
	},
	// A deliberately tiny grid for CI smoke and the kill-and-resume
	// proof: small Monte-Carlo budget, one platform, two chains.
	"smoke": func() Manifest {
		return Manifest{
			Name:      "smoke",
			Runs:      10,
			Patterns:  20,
			Platforms: []string{"Hera"},
			Scenarios: []int{1, 3},
			Axis:      AxisAlpha,
			Values:    []float64{0.05, 0.1, 0.2},
		}
	},
}

// PresetNames lists the built-in campaign presets, sorted.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for name := range presets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Preset returns the named built-in manifest, validated.
func Preset(name string) (Manifest, error) {
	build, ok := presets[strings.ToLower(name)]
	if !ok {
		return Manifest{}, fmt.Errorf("campaign: unknown preset %q (built-ins: %s)",
			name, strings.Join(PresetNames(), ", "))
	}
	m := build()
	if err := m.Validate(); err != nil {
		return Manifest{}, fmt.Errorf("campaign: preset %q: %w", name, err)
	}
	return m, nil
}
