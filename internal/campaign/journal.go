package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// journalEntry is one append-only NDJSON line. The journal is the
// campaign's observability record — timestamps and attempt counts for a
// human reading the aftermath of a crash. It is never read back by the
// executor: artifacts are the resume source of truth, so a torn final
// line (the one write a SIGKILL can tear) costs nothing.
type journalEntry struct {
	TS      string `json:"ts"`
	Event   string `json:"event"`
	Cell    string `json:"cell,omitempty"`
	ID      string `json:"id,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Error   string `json:"error,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

type journal struct {
	mu sync.Mutex
	f  *os.File
}

func openJournal(outDir string) (*journal, error) {
	//lint:allow atomicwrite append-only crash journal: atomic replace would destroy the already-durable prefix
	f, err := os.OpenFile(filepath.Join(outDir, "journal.ndjson"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	return &journal{f: f}, nil
}

// log appends one entry as a single write syscall, so concurrent cell
// workers never interleave bytes within a line.
func (j *journal) log(e journalEntry) {
	if j == nil {
		return
	}
	//lint:allow walltime journal timestamps are operator-facing metadata; no artifact or cache key derives from them
	e.TS = time.Now().UTC().Format(time.RFC3339Nano)
	buf, err := json.Marshal(e)
	if err != nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.f.Write(append(buf, '\n'))
}

// close flushes the journal to stable storage — the clean-shutdown half
// of the crash-safety contract (SIGINT drains here; SIGKILL relies on
// the artifacts instead).
func (j *journal) close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return fmt.Errorf("campaign: syncing journal: %w", err)
	}
	return j.f.Close()
}
