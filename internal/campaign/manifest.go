package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/failures"
	"amdahlyd/internal/platform"
)

// Protocol names the resilience protocol a cell runs.
const (
	// ProtocolSingle is the paper's single-level PATTERN(T, P).
	ProtocolSingle = "single"
	// ProtocolMultilevel is the Section V two-level PATTERN(T, K, P).
	ProtocolMultilevel = "multilevel"
	// ProtocolHetero is the heterogeneous joint optimum over a topology
	// of groups: active set, work split and per-group patterns.
	ProtocolHetero = "hetero"
)

// Axis names for Manifest.Axis.
const (
	AxisNone     = ""
	AxisAlpha    = "alpha"
	AxisLambda   = "lambda"
	AxisDowntime = "downtime"
	AxisShape    = "shape"
	AxisFraction = "frac"
	// AxisComm sweeps the topology's inter-group communication
	// coefficient κ; it requires the hetero protocol.
	AxisComm = "comm"
)

// DistSpec selects a failure law for the Monte-Carlo phase. Shapes is
// the shape grid (Weibull/Gamma k, log-normal σ); the exponential law is
// shapeless and must leave Shapes empty. Non-exponential laws price the
// exponential-optimal pattern under the true law on the machine-level
// simulator, exactly like the robustness study.
type DistSpec struct {
	Name   string    `json:"name"`
	Shapes []float64 `json:"shapes,omitempty"`
}

// ProtocolSpec selects a protocol for the solve + pricing phases.
// InMemFractions is the C1/C2 grid for the multilevel protocol (ignored
// and rejected for single-level).
type ProtocolSpec struct {
	Name           string    `json:"name"`
	InMemFractions []float64 `json:"in_mem_fractions,omitempty"`
}

// Manifest is the declarative campaign specification: the full grid is
// Platforms × Scenarios × Distributions(shape) × Protocols(fraction) ×
// Axis values. Cells that differ only in the axis coordinate form one
// warm-start solver chain, in axis order.
type Manifest struct {
	// Name labels the campaign in reports and journals.
	Name string `json:"name"`
	// Seed is the master seed; per-cell seeds derive from it and the
	// cell's canonical identity, so adding or reordering grid dimensions
	// never changes another cell's stream.
	Seed uint64 `json:"seed"`
	// Runs and Patterns set the Monte-Carlo budget per cell (defaults
	// 500 × 500, the paper's choice).
	Runs     int `json:"runs,omitempty"`
	Patterns int `json:"patterns,omitempty"`
	// Platforms names Table II platforms (default all four).
	Platforms []string `json:"platforms,omitempty"`
	// Scenarios lists Table III scenarios 1-6 (default 1, 3, 5 — the
	// sweep-figure subset).
	Scenarios []int `json:"scenarios,omitempty"`
	// Alpha and Downtime are the fixed model parameters (defaults 0.1
	// and 3600 s) unless swept by Axis. An explicit zero sticks: the
	// manifest is a file, absence is representable.
	Alpha    *float64 `json:"alpha,omitempty"`
	Downtime *float64 `json:"downtime,omitempty"`
	// Distributions lists the failure laws to price under (default the
	// exponential law the patterns are optimized for).
	Distributions []DistSpec `json:"distributions,omitempty"`
	// Protocols lists the protocols to solve (default single-level).
	Protocols []ProtocolSpec `json:"protocols,omitempty"`
	// Topology is the heterogeneous platform the hetero protocol solves;
	// required by (and only meaningful with) that protocol. The topology
	// replaces the Platforms dimension: group membership is explicit, the
	// axis can sweep the comm coefficient.
	Topology *platform.Topology `json:"topology,omitempty"`
	// Axis names the swept parameter ("alpha", "lambda", "downtime",
	// "shape", "frac", "comm" or empty for a pure grid) and Values its
	// coordinates in sweep order.
	Axis   string    `json:"axis,omitempty"`
	Values []float64 `json:"values,omitempty"`
	// ColdSolve disables warm-starting: every cell pays the full grid
	// scan (bit-identical to per-cell OptimalPattern, like the
	// amdahl-exp -warm=false escape hatch).
	ColdSolve bool `json:"cold_solve,omitempty"`
}

// defaults for the fixed model parameters, mirroring the CLI flags.
const (
	defaultAlpha    = 0.1
	defaultDowntime = 3600.0
)

func (m Manifest) alpha() float64 {
	if m.Alpha != nil {
		return *m.Alpha
	}
	return defaultAlpha
}

func (m Manifest) downtime() float64 {
	if m.Downtime != nil {
		return *m.Downtime
	}
	return defaultDowntime
}

// heteroOnly reports whether every listed protocol is the hetero
// protocol (the only shape a topology-bearing manifest may take).
func (m Manifest) heteroOnly() bool {
	if len(m.Protocols) == 0 {
		return false
	}
	for _, p := range m.Protocols {
		if p.Name != ProtocolHetero {
			return false
		}
	}
	return true
}

// withDefaults fills the enumerable grid dimensions.
func (m Manifest) withDefaults() Manifest {
	if m.Name == "" {
		m.Name = "campaign"
	}
	if m.Runs == 0 {
		m.Runs = 500
	}
	if m.Patterns == 0 {
		m.Patterns = 500
	}
	if len(m.Platforms) == 0 {
		switch {
		case m.heteroOnly() && m.Topology != nil:
			// The topology replaces the platform dimension: one pseudo
			// platform named after it, never looked up.
			m.Platforms = []string{m.Topology.Name}
		default:
			for _, pl := range platform.All() {
				m.Platforms = append(m.Platforms, pl.Name)
			}
		}
	}
	if len(m.Scenarios) == 0 {
		m.Scenarios = []int{1, 3, 5}
	}
	if len(m.Distributions) == 0 {
		m.Distributions = []DistSpec{{Name: "exponential"}}
	}
	if len(m.Protocols) == 0 {
		m.Protocols = []ProtocolSpec{{Name: ProtocolSingle}}
	}
	return m
}

// Validate rejects manifests that could not expand into a well-formed
// grid. It is called by Plan; exported so CLI surfaces can fail before
// touching the output directory.
func (m Manifest) Validate() error {
	m = m.withDefaults()
	if m.Runs < 1 || m.Patterns < 1 {
		return fmt.Errorf("campaign: runs and patterns must be positive, got %d×%d", m.Runs, m.Patterns)
	}
	heteroSeen := false
	for _, p := range m.Protocols {
		if p.Name == ProtocolHetero {
			heteroSeen = true
		}
	}
	if heteroSeen {
		if !m.heteroOnly() {
			return fmt.Errorf("campaign: the hetero protocol cannot mix with other protocols in one manifest")
		}
		if m.Topology == nil {
			return fmt.Errorf("campaign: the hetero protocol needs a topology")
		}
		if err := m.Topology.Validate(); err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
		if len(m.Platforms) > 1 {
			return fmt.Errorf("campaign: the hetero protocol replaces the platform dimension (got %d platforms)", len(m.Platforms))
		}
	} else {
		if m.Topology != nil {
			return fmt.Errorf("campaign: a topology has no effect without the hetero protocol")
		}
		for _, name := range m.Platforms {
			if _, err := platform.Lookup(name); err != nil {
				return fmt.Errorf("campaign: %w", err)
			}
		}
	}
	for _, sc := range m.Scenarios {
		if !costmodel.Scenario(sc).Valid() {
			return fmt.Errorf("campaign: scenario %d outside 1-6", sc)
		}
	}
	for _, d := range m.Distributions {
		if failures.IsExponentialName(d.Name) {
			if len(d.Shapes) > 0 {
				return fmt.Errorf("campaign: the exponential law is shapeless; drop shapes %v", d.Shapes)
			}
			continue
		}
		shapes := d.Shapes
		if m.Axis == AxisShape {
			shapes = m.Values
		}
		if len(shapes) == 0 {
			return fmt.Errorf("campaign: distribution %q needs shapes (or the shape axis)", d.Name)
		}
		for _, s := range shapes {
			if _, err := failures.ParseDistribution(d.Name, s, 1e-9); err != nil {
				return fmt.Errorf("campaign: %w", err)
			}
		}
	}
	multilevelSeen := false
	for _, p := range m.Protocols {
		switch p.Name {
		case ProtocolSingle:
			if len(p.InMemFractions) > 0 {
				return fmt.Errorf("campaign: in_mem_fractions have no effect on the single-level protocol")
			}
		case ProtocolMultilevel:
			multilevelSeen = true
			fracs := p.InMemFractions
			if m.Axis == AxisFraction {
				fracs = m.Values
			}
			if len(fracs) == 0 {
				return fmt.Errorf("campaign: the multilevel protocol needs in_mem_fractions (or the frac axis)")
			}
			for _, f := range fracs {
				if math.IsNaN(f) || math.IsInf(f, 0) || f < 0 || f > 1 {
					return fmt.Errorf("campaign: in-memory fraction %g outside [0, 1]", f)
				}
			}
		case ProtocolHetero:
			if len(p.InMemFractions) > 0 {
				return fmt.Errorf("campaign: in_mem_fractions have no effect on the hetero protocol")
			}
		default:
			return fmt.Errorf("campaign: unknown protocol %q (want %s, %s or %s)", p.Name, ProtocolSingle, ProtocolMultilevel, ProtocolHetero)
		}
	}
	if heteroSeen {
		switch m.Axis {
		case AxisNone, AxisComm, AxisAlpha, AxisDowntime:
		default:
			return fmt.Errorf("campaign: the hetero protocol supports the comm, alpha and downtime axes (got %q)", m.Axis)
		}
		// The heterogeneous simulator is pattern-level only: no machine
		// mode, hence no non-exponential pricing.
		for _, d := range m.Distributions {
			if !failures.IsExponentialName(d.Name) {
				return fmt.Errorf("campaign: the hetero protocol supports only exponential failures (got %q)", d.Name)
			}
		}
	}
	switch m.Axis {
	case AxisNone:
		if len(m.Values) > 0 {
			return fmt.Errorf("campaign: axis values without an axis name")
		}
	case AxisAlpha, AxisLambda, AxisDowntime, AxisShape, AxisFraction, AxisComm:
		if len(m.Values) == 0 {
			return fmt.Errorf("campaign: axis %q needs values", m.Axis)
		}
		for i, v := range m.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("campaign: axis value %d is not finite", i)
			}
			if m.Axis == AxisLambda && !(v > 0) {
				return fmt.Errorf("campaign: lambda axis value %g must be positive", v)
			}
			if m.Axis == AxisComm && v < 0 {
				return fmt.Errorf("campaign: comm axis value %g must be non-negative", v)
			}
		}
		if m.Axis == AxisComm {
			if !heteroSeen {
				return fmt.Errorf("campaign: the comm axis needs the hetero protocol")
			}
			if m.Topology != nil && m.Topology.Comm != 0 {
				return fmt.Errorf("campaign: comm is both fixed in the topology and the axis")
			}
		}
		if m.Axis == AxisAlpha && m.Alpha != nil {
			return fmt.Errorf("campaign: alpha is both fixed and the axis")
		}
		if m.Axis == AxisDowntime && m.Downtime != nil {
			return fmt.Errorf("campaign: downtime is both fixed and the axis")
		}
		if m.Axis == AxisFraction {
			if !multilevelSeen {
				return fmt.Errorf("campaign: the frac axis needs the multilevel protocol")
			}
			for _, p := range m.Protocols {
				if p.Name != ProtocolMultilevel {
					return fmt.Errorf("campaign: the frac axis requires every protocol to be multilevel (got %q)", p.Name)
				}
				if len(p.InMemFractions) > 0 {
					return fmt.Errorf("campaign: protocol %q has both fixed in_mem_fractions and the frac axis", p.Name)
				}
			}
		}
		if m.Axis == AxisShape {
			for _, d := range m.Distributions {
				if failures.IsExponentialName(d.Name) {
					return fmt.Errorf("campaign: the shape axis cannot include the shapeless exponential law")
				}
				if len(d.Shapes) > 0 {
					return fmt.Errorf("campaign: distribution %q has both fixed shapes and the shape axis", d.Name)
				}
			}
		}
	default:
		return fmt.Errorf("campaign: unknown axis %q (want alpha, lambda, downtime, shape, frac or comm)", m.Axis)
	}
	if m.Axis != AxisShape {
		// Non-exponential laws need the machine-level simulator; the
		// two-level simulator has no such path. Reject the combination at
		// manifest level rather than per cell.
		for _, p := range m.Protocols {
			if p.Name != ProtocolMultilevel {
				continue
			}
			for _, d := range m.Distributions {
				if !failures.IsExponentialName(d.Name) {
					return fmt.Errorf("campaign: the multilevel protocol supports only exponential failures (got %q)", d.Name)
				}
			}
		}
	} else {
		for _, p := range m.Protocols {
			if p.Name == ProtocolMultilevel {
				return fmt.Errorf("campaign: the multilevel protocol supports only exponential failures (shape axis present)")
			}
		}
	}
	return nil
}

// ReadManifest decodes and validates a manifest from JSON.
func ReadManifest(r io.Reader) (Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return Manifest{}, fmt.Errorf("campaign: bad manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// MarshalCanonical renders the manifest as deterministic, indented JSON —
// the bytes stored in the output directory and compared on resume.
func (m Manifest) MarshalCanonical() ([]byte, error) {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	return append(buf, '\n'), nil
}
