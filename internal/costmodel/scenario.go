package costmodel

import "fmt"

// Scenario enumerates the six resilience scenarios of Table III. Each
// scenario fixes which single component of the checkpoint cost (cP, a, or
// b/P) and of the verification cost (v or u/P) is active; the component's
// magnitude is calibrated from a platform's measured C_P and V_P at its
// deployed processor count (Section IV-A).
//
//	Scenario   1     2     3     4     5     6
//	C_P, R_P   cP    cP    a     a     b/P   b/P
//	V_P        v     u/P   v     u/P   v     u/P
type Scenario int

// The six scenarios of Table III.
const (
	Scenario1 Scenario = 1 + iota // C_P = cP,  V_P = v
	Scenario2                     // C_P = cP,  V_P = u/P
	Scenario3                     // C_P = a,   V_P = v
	Scenario4                     // C_P = a,   V_P = u/P
	Scenario5                     // C_P = b/P, V_P = v
	Scenario6                     // C_P = b/P, V_P = u/P
)

// AllScenarios lists the scenarios in Table III order.
var AllScenarios = []Scenario{
	Scenario1, Scenario2, Scenario3, Scenario4, Scenario5, Scenario6,
}

// String implements fmt.Stringer.
func (s Scenario) String() string {
	if s < Scenario1 || s > Scenario6 {
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
	return fmt.Sprintf("scenario %d", int(s))
}

// Valid reports whether s is one of the six Table III scenarios.
func (s Scenario) Valid() bool { return s >= Scenario1 && s <= Scenario6 }

// Describe returns the cost structure of the scenario as in Table III.
func (s Scenario) Describe() string {
	switch s {
	case Scenario1:
		return "C_P = cP, V_P = v"
	case Scenario2:
		return "C_P = cP, V_P = u/P"
	case Scenario3:
		return "C_P = a, V_P = v"
	case Scenario4:
		return "C_P = a, V_P = u/P"
	case Scenario5:
		return "C_P = b/P, V_P = v"
	case Scenario6:
		return "C_P = b/P, V_P = u/P"
	default:
		return "unknown scenario"
	}
}

// Calibrate computes the resilience parameters for the scenario from a
// platform's measured checkpoint cost cpMeasured and verification cost
// vpMeasured at pMeasured processors, so that the projected C_P and V_P
// reproduce the measurements exactly at P = pMeasured and extrapolate with
// the scenario's scaling to any other processor count (Section IV-A).
func (s Scenario) Calibrate(pMeasured, cpMeasured, vpMeasured, downtime float64) (Resilience, error) {
	if !s.Valid() {
		return Resilience{}, fmt.Errorf("costmodel: invalid %v", s)
	}
	if !(pMeasured >= 1) || !(cpMeasured > 0) || !(vpMeasured >= 0) {
		return Resilience{}, fmt.Errorf(
			"costmodel: cannot calibrate from P=%g, C_P=%g, V_P=%g",
			pMeasured, cpMeasured, vpMeasured)
	}

	var cp Checkpoint
	switch s {
	case Scenario1, Scenario2: // C_P = cP
		cp = Checkpoint{C: cpMeasured / pMeasured}
	case Scenario3, Scenario4: // C_P = a
		cp = Checkpoint{A: cpMeasured}
	case Scenario5, Scenario6: // C_P = b/P
		cp = Checkpoint{B: cpMeasured * pMeasured}
	}

	var vp Verification
	switch s {
	case Scenario1, Scenario3, Scenario5: // V_P = v
		vp = Verification{V: vpMeasured}
	case Scenario2, Scenario4, Scenario6: // V_P = u/P
		vp = Verification{U: vpMeasured * pMeasured}
	}

	res := New(cp, vp, downtime)
	if err := res.Validate(); err != nil {
		return Resilience{}, err
	}
	return res, nil
}

// ExpectedClass returns the analytical case (Section III-D) the scenario
// falls into for applications with a constant sequential fraction:
// scenarios 1–2 are case 1 (Theorem 2), scenarios 3–5 are case 2
// (Theorem 3) and scenario 6 is case 3 (numerical only).
func (s Scenario) ExpectedClass() Class {
	switch s {
	case Scenario1, Scenario2:
		return ClassLinear
	case Scenario3, Scenario4, Scenario5:
		return ClassConstant
	case Scenario6:
		return ClassDecreasing
	default:
		return 0
	}
}
