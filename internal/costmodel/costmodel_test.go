package costmodel

import (
	"math"
	"testing"
	"testing/quick"

	"amdahlyd/internal/xmath"
)

func TestCheckpointAt(t *testing.T) {
	c := Checkpoint{A: 10, B: 100, C: 0.5}
	// C_P = 10 + 100/4 + 0.5*4 = 37
	if got := c.At(4); got != 37 {
		t.Errorf("At(4) = %g, want 37", got)
	}
	// P < 1 clamps to 1.
	if c.At(0.5) != c.At(1) {
		t.Error("P < 1 not clamped")
	}
}

func TestVerificationAt(t *testing.T) {
	v := Verification{V: 3, U: 12}
	if got := v.At(6); got != 5 {
		t.Errorf("At(6) = %g, want 5", got)
	}
}

func TestCombinedVC(t *testing.T) {
	r := New(Checkpoint{A: 5}, Verification{V: 2}, 0)
	if got := r.CombinedVC(100); got != 7 {
		t.Errorf("CombinedVC = %g, want 7", got)
	}
}

func TestNewSetsRecoveryEqualToCheckpoint(t *testing.T) {
	cp := Checkpoint{A: 1, B: 2, C: 3}
	r := New(cp, Verification{}, 60)
	if r.Recovery != cp {
		t.Error("recovery should equal checkpoint")
	}
	if r.Downtime != 60 {
		t.Error("downtime not stored")
	}
}

func TestValidate(t *testing.T) {
	good := New(Checkpoint{A: 1}, Verification{V: 1}, 10)
	if err := good.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	bad := New(Checkpoint{A: -1}, Verification{}, 0)
	if err := bad.Validate(); err == nil {
		t.Error("negative component accepted")
	}
	nan := New(Checkpoint{}, Verification{V: math.NaN()}, 0)
	if err := nan.Validate(); err == nil {
		t.Error("NaN component accepted")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		r    Resilience
		want Class
	}{
		{"pure linear", New(Checkpoint{C: 0.5}, Verification{V: 1}, 0), ClassLinear},
		{"linear plus const", New(Checkpoint{A: 3, C: 0.5}, Verification{}, 0), ClassLinear},
		{"constant", New(Checkpoint{A: 300}, Verification{V: 15}, 0), ClassConstant},
		{"const via verif only", New(Checkpoint{B: 100}, Verification{V: 15}, 0), ClassConstant},
		{"decreasing", New(Checkpoint{B: 100}, Verification{U: 50}, 0), ClassDecreasing},
	}
	for _, c := range cases {
		got := c.r.Classify()
		if got.Class != c.want {
			t.Errorf("%s: class = %v, want %v", c.name, got.Class, c.want)
		}
	}
}

func TestClassifyCoefficients(t *testing.T) {
	lin := New(Checkpoint{C: 0.6}, Verification{V: 1}, 0).Classify()
	if lin.Coeff != 0.6 {
		t.Errorf("linear coeff = %g, want 0.6", lin.Coeff)
	}
	con := New(Checkpoint{A: 300}, Verification{V: 15}, 0).Classify()
	if con.Coeff != 315 {
		t.Errorf("constant coeff = %g, want 315 (a+v)", con.Coeff)
	}
	dec := New(Checkpoint{B: 100}, Verification{U: 50}, 0).Classify()
	if dec.Coeff != 150 {
		t.Errorf("decreasing coeff = %g, want 150 (b+u)", dec.Coeff)
	}
}

func TestClassString(t *testing.T) {
	for _, c := range []Class{ClassLinear, ClassConstant, ClassDecreasing} {
		if c.String() == "" || c.String()[0] == 'C' {
			t.Errorf("missing String for %d", int(c))
		}
	}
	if Class(42).String() != "Class(42)" {
		t.Error("unknown class String wrong")
	}
}

func TestScenarioCalibrationReproducesMeasurement(t *testing.T) {
	// Hera-like numbers: P=512, C_P=300s, V_P=15.4s.
	const p0, cp0, vp0, d = 512.0, 300.0, 15.4, 3600.0
	for _, s := range AllScenarios {
		r, err := s.Calibrate(p0, cp0, vp0, d)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if got := r.Checkpoint.At(p0); !xmath.EqualWithin(got, cp0, 1e-12, 0) {
			t.Errorf("%v: C_P(P0) = %g, want %g", s, got, cp0)
		}
		if got := r.Verification.At(p0); !xmath.EqualWithin(got, vp0, 1e-12, 0) {
			t.Errorf("%v: V_P(P0) = %g, want %g", s, got, vp0)
		}
		if r.Recovery != r.Checkpoint {
			t.Errorf("%v: recovery != checkpoint", s)
		}
		if r.Downtime != d {
			t.Errorf("%v: downtime lost", s)
		}
	}
}

func TestScenarioScalingDirections(t *testing.T) {
	const p0, cp0, vp0 = 512, 300, 15.4
	// Scenario 1: doubling P doubles C_P.
	r1, _ := Scenario1.Calibrate(p0, cp0, vp0, 0)
	if !xmath.EqualWithin(r1.Checkpoint.At(2*p0), 2*cp0, 1e-12, 0) {
		t.Error("scenario 1 checkpoint not linear in P")
	}
	if r1.Verification.At(2*p0) != vp0 {
		t.Error("scenario 1 verification should be constant")
	}
	// Scenario 3: C_P constant.
	r3, _ := Scenario3.Calibrate(p0, cp0, vp0, 0)
	if r3.Checkpoint.At(2*p0) != cp0 {
		t.Error("scenario 3 checkpoint should be constant")
	}
	// Scenario 5: doubling P halves C_P.
	r5, _ := Scenario5.Calibrate(p0, cp0, vp0, 0)
	if !xmath.EqualWithin(r5.Checkpoint.At(2*p0), cp0/2, 1e-12, 0) {
		t.Error("scenario 5 checkpoint not ∝ 1/P")
	}
	// Scenario 6: verification also halves.
	r6, _ := Scenario6.Calibrate(p0, cp0, vp0, 0)
	if !xmath.EqualWithin(r6.Verification.At(2*p0), vp0/2, 1e-12, 0) {
		t.Error("scenario 6 verification not ∝ 1/P")
	}
}

func TestScenarioExpectedClassMatchesClassify(t *testing.T) {
	// The class computed from the calibrated parameters must agree with
	// the paper's static mapping (Section IV-A).
	for _, s := range AllScenarios {
		r, err := s.Calibrate(1024, 439, 9.1, 3600)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := r.Classify().Class, s.ExpectedClass(); got != want {
			t.Errorf("%v: classified %v, paper says %v", s, got, want)
		}
	}
}

func TestCalibrateRejectsBadInput(t *testing.T) {
	if _, err := Scenario1.Calibrate(0, 300, 15, 0); err == nil {
		t.Error("P=0 accepted")
	}
	if _, err := Scenario1.Calibrate(512, 0, 15, 0); err == nil {
		t.Error("C_P=0 accepted")
	}
	if _, err := Scenario(0).Calibrate(512, 300, 15, 0); err == nil {
		t.Error("invalid scenario accepted")
	}
	if _, err := Scenario(7).Calibrate(512, 300, 15, 0); err == nil {
		t.Error("scenario 7 accepted")
	}
}

func TestScenarioStringAndDescribe(t *testing.T) {
	if Scenario3.String() != "scenario 3" {
		t.Errorf("String = %q", Scenario3.String())
	}
	if Scenario(9).String() != "Scenario(9)" {
		t.Error("invalid scenario String wrong")
	}
	seen := map[string]bool{}
	for _, s := range AllScenarios {
		d := s.Describe()
		if d == "" || seen[d] {
			t.Errorf("%v: bad or duplicate description %q", s, d)
		}
		seen[d] = true
	}
	if Scenario(0).Describe() != "unknown scenario" {
		t.Error("unknown Describe wrong")
	}
}

// Property: for any positive calibration inputs, every scenario reproduces
// the measured costs at the calibration point.
func TestCalibrationFixedPointProperty(t *testing.T) {
	f := func(pRaw, cRaw, vRaw uint16) bool {
		p0 := 1 + float64(pRaw%4096)
		cp0 := 0.1 + float64(cRaw%10000)/10
		vp0 := float64(vRaw%1000) / 10
		for _, s := range AllScenarios {
			r, err := s.Calibrate(p0, cp0, vp0, 0)
			if err != nil {
				return false
			}
			if !xmath.EqualWithin(r.Checkpoint.At(p0), cp0, 1e-9, 1e-12) {
				return false
			}
			if !xmath.EqualWithin(r.Verification.At(p0), vp0, 1e-9, 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIsZero(t *testing.T) {
	if !(Checkpoint{}).IsZero() {
		t.Error("zero checkpoint not detected")
	}
	if (Checkpoint{A: 1}).IsZero() {
		t.Error("nonzero checkpoint reported zero")
	}
}
