// Package costmodel implements the resilience-cost substrate of Section II:
// the general checkpoint cost C_P = a + b/P + cP, the verification cost
// V_P = v + u/P, the recovery cost R_P (equal to C_P in the paper), the
// downtime D, the six resilience scenarios of Table III, and the
// classification into the analytical cases of Section III-D.
package costmodel

import (
	"errors"
	"fmt"
	"math"
)

// Checkpoint models the time a + b/P + cP to save (or recover) a global
// application state with P processors:
//
//   - a is the P-independent I/O or start-up component (stable-storage
//     bandwidth bottleneck: a = β + M/τ_io);
//   - b/P is the per-processor share of writing the memory footprint over
//     the network (in-memory checkpointing: b = M/τ_net);
//   - cP is the coordination/message-passing overhead that grows with the
//     processor count (coordinated checkpointing).
type Checkpoint struct {
	A float64 `json:"a"`
	B float64 `json:"b"`
	C float64 `json:"c"`
}

// At returns C_P for the given processor count.
func (c Checkpoint) At(p float64) float64 {
	if p < 1 {
		p = 1
	}
	return c.A + c.B/p + c.C*p
}

// IsZero reports whether all components vanish.
func (c Checkpoint) IsZero() bool { return c.A == 0 && c.B == 0 && c.C == 0 }

// Verification models the in-memory error-detection cost V_P = v + u/P:
// v is a start-up latency and u/P the per-processor share of inspecting
// the application data.
type Verification struct {
	V float64 `json:"v"`
	U float64 `json:"u"`
}

// At returns V_P for the given processor count.
func (v Verification) At(p float64) float64 {
	if p < 1 {
		p = 1
	}
	return v.V + v.U/p
}

// Resilience bundles every resilience parameter of a platform + protocol
// combination: checkpoint, recovery, verification and downtime.
type Resilience struct {
	Checkpoint   Checkpoint   `json:"checkpoint"`
	Recovery     Checkpoint   `json:"recovery"` // R_P = C_P in the paper
	Verification Verification `json:"verification"`
	Downtime     float64      `json:"downtime"` // D, seconds
}

// New returns a Resilience with recovery equal to the checkpoint cost,
// which is the paper's assumption (both involve the same I/O).
func New(cp Checkpoint, vp Verification, downtime float64) Resilience {
	return Resilience{Checkpoint: cp, Recovery: cp, Verification: vp, Downtime: downtime}
}

// Validate rejects negative components.
func (r Resilience) Validate() error {
	for _, v := range []float64{
		r.Checkpoint.A, r.Checkpoint.B, r.Checkpoint.C,
		r.Recovery.A, r.Recovery.B, r.Recovery.C,
		r.Verification.V, r.Verification.U, r.Downtime,
	} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return errors.New("costmodel: negative or non-finite resilience parameter")
		}
	}
	return nil
}

// CombinedVC returns C_P + V_P at the given processor count, the quantity
// (verification followed by checkpoint) that the VC protocol amortizes.
func (r Resilience) CombinedVC(p float64) float64 {
	return r.Checkpoint.At(p) + r.Verification.At(p)
}

// Class identifies which analytical case of Section III-D applies to a
// resilience model.
type Class int

const (
	// ClassLinear is case 1: C_P = cP + o(P), c ≠ 0. Theorem 2 applies
	// (P* = Θ(λ^-1/4), T* = Θ(λ^-1/2)).
	ClassLinear Class = iota + 1
	// ClassConstant is case 2: C_P + V_P = d + o(1), d ≠ 0. Theorem 3
	// applies (P* = T* = Θ(λ^-1/3)).
	ClassConstant
	// ClassDecreasing is case 3: C_P + V_P = h/P. First-order analysis
	// yields no bounded optimum; only the numerical solver applies.
	ClassDecreasing
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassLinear:
		return "linear (C_P = cP)"
	case ClassConstant:
		return "constant (C_P + V_P = d)"
	case ClassDecreasing:
		return "decreasing (C_P + V_P = h/P)"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Classification carries the case and its dominating coefficient.
type Classification struct {
	Class Class
	// Coeff is c for ClassLinear, d = a_C + a_R-independent constant
	// (checkpoint A + verification V) for ClassConstant, and
	// h = B + U for ClassDecreasing.
	Coeff float64
}

// Classify maps the resilience model onto the paper's case analysis,
// looking only at the checkpoint+verification scaling (recovery mirrors
// the checkpoint and does not enter the first-order formulas).
func (r Resilience) Classify() Classification {
	c := r.Checkpoint.C
	d := r.Checkpoint.A + r.Verification.V
	h := r.Checkpoint.B + r.Verification.U
	switch {
	case c != 0:
		return Classification{Class: ClassLinear, Coeff: c}
	case d != 0:
		return Classification{Class: ClassConstant, Coeff: d}
	default:
		return Classification{Class: ClassDecreasing, Coeff: h}
	}
}
