package costmodel

import (
	"math"
	"testing"
)

// Calibrate is the boundary where measured platform numbers enter the
// model; NaN or infinite measurements must not produce a "calibrated"
// resilience object. The original `pMeasured < 1 || cpMeasured <= 0`
// form passed NaN straight through (nanguard's bug class).
func TestCalibrateRejectsNonFiniteMeasurements(t *testing.T) {
	cases := []struct {
		name      string
		p, cp, vp float64
	}{
		{"NaN P", math.NaN(), 300, 15.4},
		{"-Inf P", math.Inf(-1), 300, 15.4},
		{"zero P", 0, 300, 15.4},
		{"NaN C_P", 512, math.NaN(), 15.4},
		{"zero C_P", 512, 0, 15.4},
		{"NaN V_P", 512, 300, math.NaN()},
		{"negative V_P", 512, 300, -1},
	}
	for _, sc := range AllScenarios {
		for _, tc := range cases {
			if _, err := sc.Calibrate(tc.p, tc.cp, tc.vp, 3600); err == nil {
				t.Errorf("%v.Calibrate rejected nothing for %s (P=%g, C_P=%g, V_P=%g)",
					sc, tc.name, tc.p, tc.cp, tc.vp)
			}
		}
	}
}
