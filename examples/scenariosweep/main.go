// Scenario sweep: how does the choice of checkpointing protocol (the six
// resilience scenarios of Table III) change the optimal pattern on each
// of the four SCR platforms? A miniature, terminal-rendered Fig. 2.
//
//	go run ./examples/scenariosweep
package main

import (
	"fmt"
	"log"
	"os"

	"amdahlyd/internal/experiments"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/report"
)

func main() {
	cfg := experiments.Quick()
	cfg.Seed = 7

	res, err := experiments.Fig2(platform.All(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Chart the optimal processor counts per scenario for each platform.
	byPlatform := map[string]*report.Series{}
	var order []string
	for _, c := range res.Cells {
		s, ok := byPlatform[c.Platform]
		if !ok {
			s = &report.Series{Name: c.Platform}
			byPlatform[c.Platform] = s
			order = append(order, c.Platform)
		}
		if c.Optimal != nil {
			s.Add(float64(c.Scenario), c.Optimal.P)
		}
	}
	series := make([]report.Series, 0, len(order))
	for _, name := range order {
		series = append(series, *byPlatform[name])
	}
	chart := report.Chart{
		Title:  "Optimal processor count by scenario (numerical)",
		XLabel: "scenario",
		YLabel: "P*",
		LogY:   true,
	}
	if err := chart.Render(os.Stdout, series...); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nReading: scenarios whose checkpoint cost shrinks with P (5, 6)")
	fmt.Println("support far larger allocations than linear-cost scenarios (1, 2).")
}
