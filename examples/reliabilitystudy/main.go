// Reliability study: as processors become more reliable (λ_ind shrinks),
// how do the optimal allocation, the optimal period and the achievable
// overhead scale? A terminal-rendered miniature of Fig. 5 with the
// theorem exponents recovered by log-log regression.
//
//	go run ./examples/reliabilitystudy
package main

import (
	"fmt"
	"log"
	"os"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/experiments"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/report"
	"amdahlyd/internal/xmath"
)

func main() {
	cfg := experiments.Quick()
	cfg.Seed = 11
	lambdas := xmath.Logspace(1e-12, 1e-8, 5)

	res, err := experiments.Fig5(platform.Hera(), lambdas, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Theorem exponents recovered from the numerical optimum:")
	slopes := res.Slopes()
	expect := map[costmodel.Scenario]struct{ p, t string }{
		costmodel.Scenario1: {"-1/4 (Thm 2)", "-1/2 (Thm 2)"},
		costmodel.Scenario3: {"-1/3 (Thm 3)", "-1/3 (Thm 3)"},
		costmodel.Scenario5: {"-1/3 (Thm 3)", "-1/3 (Thm 3)"},
	}
	for _, sc := range []costmodel.Scenario{costmodel.Scenario1, costmodel.Scenario3, costmodel.Scenario5} {
		s := slopes[sc]
		e := expect[sc]
		fmt.Printf("  %v: P* ~ λ^%+.3f (paper: %s), T* ~ λ^%+.3f (paper: %s)\n",
			sc, s.P, e.p, s.T, e.t)
	}
	fmt.Println()

	chart := report.Chart{
		Title:  "Optimal processor count vs individual error rate (cf. Fig. 5(a))",
		XLabel: "lambda_ind",
		YLabel: "P*",
		LogX:   true,
		LogY:   true,
	}
	if err := chart.Render(os.Stdout, res.PSeries()...); err != nil {
		log.Fatal(err)
	}
}
