// Multilevel study (extension beyond the paper, cf. its Section V future
// work): when a cheap in-memory checkpoint level is added below the disk
// level, how does the *joint* optimum — segment length T, segments per
// disk checkpoint K, and crucially the processor allocation P, the
// paper's central question — compare with the single-level pattern?
//
// The program sweeps P across a log grid around the deployed count,
// solving the inner (T, K) problem at each allocation, plots two-level
// vs single-level overhead as a figure, and marks the joint optimum
// found by multilevel.OptimalPattern.
//
//	go run ./examples/multilevelstudy
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/experiments"
	"amdahlyd/internal/multilevel"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/report"
)

func main() {
	pl := platform.Hera()
	m, err := experiments.BuildModel(pl, costmodel.Scenario3, 0.1, 3600)
	if err != nil {
		log.Fatal(err)
	}
	const frac = 20.0 / 300 // a 20 s in-memory checkpoint under the 300 s disk one
	costsFor := multilevel.InMemoryFraction(m, frac)

	// The joint (T, K, P) optimum: how many processors the two-level
	// protocol actually wants.
	joint, err := multilevel.OptimalPattern(m, costsFor, multilevel.PatternOptions{IntegerP: true})
	if err != nil {
		log.Fatal(err)
	}

	// P-sweep: the two-level overhead at the per-P optimal (T, K) vs the
	// single-level Theorem 1 overhead, across a decade around the optima.
	var two, one report.Series
	two.Name = fmt.Sprintf("two-level (C1 = %s·C2)", report.Fmt(frac))
	one.Name = "single-level (Theorem 1)"
	tb := report.NewTable(
		fmt.Sprintf("Two-level structure vs allocation on %s (scenario 3, α=0.1)", pl.Name),
		"P", "T* (s)", "K*", "two-level H", "single-level H")
	lo, hi := joint.P/8, joint.P*8
	for i := 0; i <= 24; i++ {
		p := math.Round(lo * math.Pow(hi/lo, float64(i)/24))
		costs, err := costsFor(p)
		if err != nil {
			log.Fatal(err)
		}
		lf, ls := m.Rates(p)
		plan, err := multilevel.FirstOrder(costs, lf, ls, m.Profile.Overhead(p))
		if err != nil {
			log.Fatal(err)
		}
		single := m.OverheadAtOptimalPeriod(p)
		two.Add(p, plan.PredictedH)
		one.Add(p, single)
		if i%4 == 0 {
			if err := tb.AddRow(
				report.Fmt(p),
				report.Fmt(plan.T),
				fmt.Sprintf("%d", plan.K),
				report.Fmt(plan.PredictedH),
				report.Fmt(single),
			); err != nil {
				log.Fatal(err)
			}
		}
	}

	chart := report.Chart{
		Title:  fmt.Sprintf("Overhead vs processor allocation on %s (scenario 3)", pl.Name),
		XLabel: "P",
		YLabel: "H",
		LogX:   true,
	}
	if err := chart.Render(os.Stdout, two, one); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	single, err := m.FirstOrder()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nJoint two-level optimum:   T* = %s s, K* = %d, P* = %s, H = %s\n",
		report.Fmt(joint.T), joint.K, report.Fmt(joint.P), report.Fmt(joint.PredictedH))
	fmt.Printf("Single-level optimum:      T* = %s s, P* = %s, H = %s\n",
		report.Fmt(single.T), report.Fmt(single.P), report.Fmt(single.Overhead))
	fmt.Println("\nWith silent errors dominating (s=0.78 on Hera), the cheap in-memory")
	fmt.Println("level absorbs most rollbacks, so the joint optimum runs MORE processors")
	fmt.Println("than the single-level pattern and still lowers the overhead — the")
	fmt.Println("two-level protocol changes the answer to the paper's central question.")
}
