// Multilevel study (extension beyond the paper, cf. its Section V future
// work): when a cheap in-memory checkpoint level is added below the disk
// level, how much overhead does the two-level pattern save, and how does
// the optimal structure (segment length T, segments-per-disk-checkpoint
// K) respond to the silent-to-fail-stop mix?
//
//	go run ./examples/multilevelstudy
package main

import (
	"fmt"
	"log"
	"os"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/experiments"
	"amdahlyd/internal/multilevel"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/report"
)

func main() {
	pl := platform.Hera()
	m, err := experiments.BuildModel(pl, costmodel.Scenario3, 0.1, 3600)
	if err != nil {
		log.Fatal(err)
	}
	p := pl.Processors
	hOfP := m.Profile.Overhead(p)
	single := m.OverheadAtOptimalPeriod(p)

	tb := report.NewTable(
		fmt.Sprintf("Two-level vs single-level on %s (P=%g, α=0.1)", pl.Name, p),
		"in-memory C1 (s)", "T* (s)", "K*", "two-level overhead", "single-level", "saving")

	for _, c1 := range []float64{5, 20, 60, 150, 300} {
		costs, err := multilevel.SingleLevelCosts(m, p, c1/300)
		if err != nil {
			log.Fatal(err)
		}
		lf, ls := m.Rates(p)
		plan, err := multilevel.FirstOrder(costs, lf, ls, hOfP)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := multilevel.NewSimulator(costs, plan.Pattern, lf, ls)
		if err != nil {
			log.Fatal(err)
		}
		sum, err := sim.Simulate(100, 100, 3, hOfP)
		if err != nil {
			log.Fatal(err)
		}
		tb.AddRow(
			report.Fmt(c1),
			report.Fmt(plan.T),
			fmt.Sprintf("%d", plan.K),
			report.Fmt(sum.Mean),
			report.Fmt(single),
			fmt.Sprintf("%.2f%%", (1-sum.Mean/single)*100),
		)
	}
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nWith silent errors dominating (s=0.78 on Hera), cheap in-memory")
	fmt.Println("checkpoints absorb most rollbacks; disk checkpoints stretch out to")
	fmt.Println("K segments and the overhead drops below the single-level optimum.")
}
