// Capacity planning: a climate-simulation campaign with three months of
// sequential work must finish as fast as possible on Coastal. How many
// processors should the job request, and what does getting the resilience
// model wrong cost?
//
// The example compares four plans:
//
//  1. "max-P": grab every processor (the error-free instinct);
//
//  2. Young/Daly tuning that ignores silent errors;
//
//  3. the paper's first-order optimum (Theorems 2/3);
//
//  4. the numerical optimum of the exact formula.
//
//     go run ./examples/capacityplanning
package main

import (
	"fmt"
	"log"
	"os"

	"amdahlyd/internal/baselines"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/experiments"
	"amdahlyd/internal/optimize"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/report"
)

func main() {
	const (
		alpha    = 0.05         // 5% sequential fraction
		downtime = 1800.0       // replacement-based restoration: 30 min
		wTotal   = 90 * 86400.0 // three months of sequential work (s)
		maxP     = 20000.0      // largest allocation the queue allows
	)
	pl := platform.Coastal()
	m, err := experiments.BuildModel(pl, costmodel.Scenario1, alpha, downtime)
	if err != nil {
		log.Fatal(err)
	}

	tb := report.NewTable(
		fmt.Sprintf("Makespan of %0.f days of sequential work on %s (α=%g)",
			wTotal/86400, pl.Name, alpha),
		"plan", "P", "T (s)", "overhead", "makespan (days)", "vs best")

	type plan struct {
		name string
		p, t float64
	}
	var plans []plan

	// Plan 1: all the processors, period tuned per Theorem 1 for that P.
	plans = append(plans, plan{"max-P allocation", maxP, m.OptimalPeriodFixedP(maxP)})

	// Plan 2: Young/Daly period ignoring silent errors, at the numerical
	// optimum's processor count.
	num, err := optimize.OptimalPattern(m, optimize.PatternOptions{})
	if err != nil {
		log.Fatal(err)
	}
	young, err := baselines.PlanYoung(m, num.P)
	if err != nil {
		log.Fatal(err)
	}
	plans = append(plans, plan{"Young period (no silent)", num.P, young.T})

	// Plan 3: the paper's closed-form first-order optimum.
	fo, err := m.FirstOrder()
	if err != nil {
		log.Fatal(err)
	}
	plans = append(plans, plan{"first-order (Thm 2)", fo.P, fo.T})

	// Plan 4: numerical optimum of the exact formula.
	plans = append(plans, plan{"numerical optimum", num.P, num.T})

	best := m.ExpectedMakespan(wTotal, num.T, num.P)
	for _, pn := range plans {
		//lint:allow frozenloop four-row report table, one probe per plan — not a hot path
		h := m.Overhead(pn.t, pn.p)
		mk := m.ExpectedMakespan(wTotal, pn.t, pn.p)
		tb.AddRow(pn.name, report.Fmt(pn.p), report.Fmt(pn.t), report.Fmt(h),
			report.Fmt(mk/86400), fmt.Sprintf("+%.1f%%", (mk/best-1)*100))
	}
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nNote: enrolling all %g processors is NOT fastest — failures and\n", maxP)
	fmt.Println("checkpoint synchronization eat the parallelism (the paper's headline).")
}
