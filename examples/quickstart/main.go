// Quickstart: find the optimal number of processors and checkpointing
// period for a parallel job on a failure-prone platform, then check the
// prediction by simulation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/experiments"
	"amdahlyd/internal/optimize"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/sim"
)

func main() {
	// An application that is 10% sequential (Amdahl's law), running on
	// the Hera platform with coordinated checkpointing to stable storage
	// (scenario 1: checkpoint cost grows linearly with P).
	pl := platform.Hera()
	m, err := experiments.BuildModel(pl, costmodel.Scenario1, 0.1, 3600)
	if err != nil {
		log.Fatal(err)
	}

	// First-order optimum (Theorem 2): closed forms in λ_ind.
	fo, err := m.FirstOrder()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first-order: enroll P*=%.0f processors, checkpoint every T*=%.0f s\n", fo.P, fo.T)
	fmt.Printf("             predicted execution overhead %.4f (error-free floor is α=0.1)\n", fo.Overhead)

	// Numerical optimum of the exact expected-time formula.
	num, err := optimize.OptimalPattern(m, optimize.PatternOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("numerical:   P*=%.0f, T*=%.0f s, overhead %.4f\n", num.P, num.T, num.Overhead)

	// Validate by Monte-Carlo simulation of the VC protocol.
	res, err := sim.Simulate(m, fo.T, fo.P, sim.RunConfig{Runs: 200, Patterns: 200, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation:  overhead %.4f ± %.4f (CI95) over %d runs\n",
		res.Overhead.Mean, res.Overhead.CI95, res.Config.Runs)
	fmt.Printf("             %d fail-stop errors, %d silent detections survived\n",
		res.FailStops, res.SilentDetections)
}
