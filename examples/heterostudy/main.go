// Heterogeneous topology study (extension beyond the paper, cf. its
// Section VI): the paper's platforms are homogeneous, but real machines
// pair reliable CPU tiles with faster, failure-prone accelerators. When
// the platform is a topology of groups — each with its own error rate,
// speed, and checkpoint costs — does splitting work across groups beat
// the best homogeneous pattern, and how fast does inter-group
// communication eat the advantage?
//
// The program builds the Hera-derived two-group study topology (CPU
// tiles plus a 50×-less-reliable, 8×-faster accelerator quarter), sweeps
// the comm coefficient through a warm-started hetero.SweepSolver chain,
// and compares the joint per-group optimum against the homogeneous
// single-level baseline on the CPU group alone.
//
//	go run ./examples/heterostudy
package main

import (
	"fmt"
	"log"
	"os"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/experiments"
	"amdahlyd/internal/hetero"
	"amdahlyd/internal/optimize"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/report"
)

func main() {
	pl := platform.Hera()
	const alpha, downtime = 0.1, 3600.0
	sc := costmodel.Scenario1

	// Homogeneous baseline: the paper's single-level optimum on the CPU
	// tiles alone (no accelerator, no comm charge).
	base, err := experiments.BuildModel(pl, sc, alpha, downtime)
	if err != nil {
		log.Fatal(err)
	}
	single, err := optimize.OptimalPattern(base, optimize.PatternOptions{IntegerP: true})
	if err != nil {
		log.Fatal(err)
	}

	// Comm sweep on the two-group topology, warm-started along the axis
	// exactly like the campaign executor does.
	solver := hetero.NewSweepSolver(hetero.SweepOptions{
		PatternOptions: hetero.PatternOptions{
			PatternOptions: optimize.PatternOptions{IntegerP: true},
		},
	})
	var het, hom report.Series
	het.Name = "heterogeneous joint optimum"
	hom.Name = "homogeneous CPU baseline"
	tb := report.NewTable(
		fmt.Sprintf("Joint optimum vs comm coefficient on %s+accel (scenario 1, α=%g)", pl.Name, alpha),
		"comm", "G", "P total", "accel share", "H hetero", "H single", "gain")
	for _, comm := range experiments.DefaultHeteroComms {
		tp := experiments.HeteroStudyTopology(pl, comm, 0.25)
		//lint:allow frozenloop one compile per distinct comm topology; the solver runs on the compiled model
		hm, err := hetero.CompileTopology(tp, sc, alpha, downtime)
		if err != nil {
			log.Fatal(err)
		}
		res, err := solver.Solve(hm)
		if err != nil {
			log.Fatal(err)
		}
		var totalP, accelFrac float64
		for _, g := range res.Groups {
			totalP += g.P
			if tp.Groups[g.Group].Name == "accel" {
				accelFrac = g.Fraction
			}
		}
		het.Add(comm, res.Overhead)
		hom.Add(comm, single.Overhead)
		if err := tb.AddRow(
			report.Fmt(comm),
			fmt.Sprintf("%d", res.Active),
			report.Fmt(totalP),
			report.Fmt(accelFrac),
			report.Fmt(res.Overhead),
			report.Fmt(single.Overhead),
			report.Fmt(single.Overhead-res.Overhead),
		); err != nil {
			log.Fatal(err)
		}
	}

	chart := report.Chart{
		Title:  fmt.Sprintf("Overhead vs inter-group comm on %s+accel (scenario 1)", pl.Name),
		XLabel: "comm",
		YLabel: "H",
	}
	if err := chart.Render(os.Stdout, het, hom); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	st := solver.Stats()
	fmt.Printf("\nHomogeneous optimum:  T* = %s s, P* = %s, H = %s\n",
		report.Fmt(single.T), report.Fmt(single.P), report.Fmt(single.Overhead))
	fmt.Printf("Sweep solver: %d warm / %d cold group solves, %d evals\n",
		st.WarmSolves, st.ColdSolves, st.Evals)
	fmt.Println("\nAt zero comm the accelerator absorbs most of the work at its own")
	fmt.Println("shorter optimal period, beating the homogeneous pattern even at a 50×")
	fmt.Println("error rate; as comm grows the charge acts like extra sequential")
	fmt.Println("fraction, the split narrows, and past a threshold the optimum")
	fmt.Println("concentrates on the single fastest group rather than pay for two.")
}
