package amdahlyd

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"amdahlyd/internal/baselines"
	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/experiments"
	"amdahlyd/internal/failures"
	"amdahlyd/internal/fleet"
	"amdahlyd/internal/hetero"
	"amdahlyd/internal/multilevel"
	"amdahlyd/internal/optimize"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/rng"
	"amdahlyd/internal/service"
	"amdahlyd/internal/sim"
	"amdahlyd/internal/xmath"
)

// benchConfig is the reduced Monte-Carlo budget used by the per-figure
// benchmarks: same code paths as the paper's 500×500 runs, ~100× cheaper,
// so `go test -bench .` regenerates every figure in seconds.
func benchConfig() experiments.Config {
	cfg := experiments.Quick()
	cfg.Seed = 1
	return cfg
}

func heraModel(b *testing.B, sc costmodel.Scenario, alpha float64) core.Model {
	b.Helper()
	m, err := experiments.BuildModel(platform.Hera(), sc, alpha, 3600)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// ---------------------------------------------------------------------
// One benchmark per figure of the evaluation section (Figs. 2–7).
// ---------------------------------------------------------------------

// BenchmarkFig2 regenerates Fig. 2 (optimal patterns per scenario) on all
// four Table II platforms.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(platform.All(), benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3 regenerates Fig. 3 (period and overhead vs processor
// count on Hera).
func BenchmarkFig3(b *testing.B) {
	procs := []float64{256, 512, 768, 1024, 1280}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(platform.Hera(), procs, benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4 regenerates Fig. 4 (impact of the sequential fraction α).
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(platform.Hera(), nil, benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 regenerates Fig. 5 (impact of λ_ind at α = 0.1).
func BenchmarkFig5(b *testing.B) {
	lambdas := []float64{1e-12, 1e-11, 1e-10, 1e-9, 1e-8}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(platform.Hera(), lambdas, benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6 regenerates Fig. 6 (λ_ind sweep with α = 0).
func BenchmarkFig6(b *testing.B) {
	lambdas := []float64{1e-12, 1e-11, 1e-10, 1e-9, 1e-8}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(platform.Hera(), lambdas, benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7 regenerates Fig. 7 (impact of the downtime D).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(platform.Hera(), nil, benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Hot-path micro-benchmarks.
// ---------------------------------------------------------------------

// BenchmarkExactPatternTime measures one evaluation of Proposition 1, the
// innermost objective of every optimization.
func BenchmarkExactPatternTime(b *testing.B) {
	m := heraModel(b, costmodel.Scenario1, 0.1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.ExactPatternTime(6000, 512)
	}
	_ = sink
}

// BenchmarkFreeze measures compiling a model at a fixed P — the once-per-
// probe cost the frozen engine pays to make every subsequent evaluation
// cheap.
func BenchmarkFreeze(b *testing.B) {
	m := heraModel(b, costmodel.Scenario1, 0.1)
	var sink float64
	for i := 0; i < b.N; i++ {
		fz := m.Freeze(512)
		sink += fz.ProfileOverhead()
	}
	_ = sink
}

// BenchmarkFrozenOverhead measures the compiled kernel: one evaluation of
// the exact overhead at a pre-frozen P, the innermost objective of the
// nested (T, P) optimizer.
func BenchmarkFrozenOverhead(b *testing.B) {
	m := heraModel(b, costmodel.Scenario1, 0.1)
	fz := m.Freeze(512)
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += fz.Overhead(6000)
	}
	_ = sink
}

// BenchmarkFrozenOverheadLog measures the same kernel in the u = log T
// form the grid-and-golden period minimizer actually drives.
func BenchmarkFrozenOverheadLog(b *testing.B) {
	m := heraModel(b, costmodel.Scenario1, 0.1)
	fz := m.Freeze(512)
	var sink float64
	u := math.Log(6000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += fz.OverheadLog(u)
	}
	_ = sink
}

// BenchmarkFirstOrderSolve measures the closed-form Theorem 2/3 solver.
func BenchmarkFirstOrderSolve(b *testing.B) {
	m := heraModel(b, costmodel.Scenario1, 0.1)
	for i := 0; i < b.N; i++ {
		if _, err := m.FirstOrder(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNumericalOptimum measures the full nested (T, P) optimization
// of the exact overhead.
func BenchmarkNumericalOptimum(b *testing.B) {
	m := heraModel(b, costmodel.Scenario3, 0.1)
	for i := 0; i < b.N; i++ {
		if _, err := optimize.OptimalPattern(m, optimize.PatternOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchSweepSolve measures the warm-start batch solver over a
// 32-cell λ_ind axis (scenario 3, the Fig. 5 shape). The amortized
// per-cell cost is the reported ns/cell metric — the acceptance record
// of the sweep solver: ≥5× below the cold BenchmarkNumericalOptimum.
func BenchmarkBatchSweepSolve(b *testing.B) {
	base := heraModel(b, costmodel.Scenario3, 0.1)
	lambdas := xmath.Logspace(1e-12, 1e-8, 32)
	models := make([]core.Model, len(lambdas))
	for i, l := range lambdas {
		m := base
		m.LambdaInd = l
		models[i] = m
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := optimize.BatchOptimalPattern(models, optimize.SweepOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != len(models) {
			b.Fatal("short result")
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(models)), "ns/cell")
}

// BenchmarkSweepSolverWarmCell measures the marginal cost of one warm
// cell: the solver alternates between two adjacent axis cells, so every
// timed solve runs inside the warm bracket of its neighbour.
func BenchmarkSweepSolverWarmCell(b *testing.B) {
	m1 := heraModel(b, costmodel.Scenario3, 0.1)
	m2 := m1
	m2.LambdaInd = m1.LambdaInd * 1.3
	s := optimize.NewSweepSolver(optimize.SweepOptions{})
	if _, err := s.Solve(m1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := m1
		if i%2 == 0 {
			m = m2
		}
		res, err := s.Solve(m)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Warm {
			b.Fatal("cell did not warm-start")
		}
	}
}

// BenchmarkIterativeRelaxation measures the Jin-style baseline solver.
func BenchmarkIterativeRelaxation(b *testing.B) {
	m := heraModel(b, costmodel.Scenario3, 0.1)
	for i := 0; i < b.N; i++ {
		if _, _, err := baselines.IterativeRelaxation(m, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProtocolPattern measures pattern-level simulator throughput
// (patterns per second) at Hera's real error pressure.
func BenchmarkProtocolPattern(b *testing.B) {
	m := heraModel(b, costmodel.Scenario1, 0.1)
	pr, err := sim.NewProtocol(m, 6240, 219)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	var st sim.PatternStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr.SimulatePattern(r, &st)
	}
}

// BenchmarkMachinePattern measures machine-level (per-processor event)
// simulation — the ablation partner of BenchmarkProtocolPattern: it
// quantifies the cost of explicit per-processor failure modelling.
func BenchmarkMachinePattern(b *testing.B) {
	m := heraModel(b, costmodel.Scenario1, 0.1)
	mc, err := sim.NewMachine(m, 6240, 219)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mc.SimulateRun(1, r.Split(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceGenerationExponential measures synthetic trace
// generation on the historical exponential law (~12.7k events over 64
// processors) — the hot path of trace-driven workloads.
func BenchmarkTraceGenerationExponential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr, err := failures.GenerateTrace(1e-6, 0.3, 64, 2e8, rng.New(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if len(tr.Events) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkTraceGenerationWeibull is its ablation partner on the
// generic Distribution path (Weibull k = 0.7, same MTBF): the price of
// the Pow-based inversion over the plain log draw.
func BenchmarkTraceGenerationWeibull(b *testing.B) {
	d, err := failures.NewWeibullMTBF(0.7, 1e6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := failures.GenerateTraceDist(d, 0.3, 64, 2e8, rng.New(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if len(tr.Events) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkMachinePatternWeibull measures the renewal-clock machine
// simulator (the robustness study's pricing oracle) against
// BenchmarkMachinePattern's exponential fast path.
func BenchmarkMachinePatternWeibull(b *testing.B) {
	m := heraModel(b, costmodel.Scenario1, 0.1)
	d, err := failures.NewWeibullMTBF(0.7, 1/m.LambdaInd)
	if err != nil {
		b.Fatal(err)
	}
	mc, err := sim.NewMachineDist(m, 6240, 219, d)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mc.SimulateRun(1, r.Split(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTwoLevelPattern measures the multilevel-extension simulator.
func BenchmarkTwoLevelPattern(b *testing.B) {
	m := heraModel(b, costmodel.Scenario3, 0.1)
	lf, ls := m.Rates(512)
	costs, err := multilevel.SingleLevelCosts(m, 512, 20.0/300)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := multilevel.FirstOrder(costs, lf, ls, m.Profile.Overhead(512))
	if err != nil {
		b.Fatal(err)
	}
	s, err := multilevel.NewSimulator(costs, plan.Pattern, lf, ls)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	var st multilevel.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SimulatePattern(r, &st)
	}
}

// BenchmarkMultilevelOptimize measures the joint two-level (T, K, P)
// optimization — the per-cell unit of every multilevel sweep and of
// /v1/multilevel/optimize. Gated by scripts/bench.sh -compare: the
// inner (T, K) solve is closed-form, so this cost is dominated by the
// outer P scan and must only ever go down.
func BenchmarkMultilevelOptimize(b *testing.B) {
	m := heraModel(b, costmodel.Scenario3, 0.1)
	costsFor := multilevel.InMemoryFraction(m, 20.0/300)
	for i := 0; i < b.N; i++ {
		if _, err := multilevel.OptimalPattern(m, costsFor, multilevel.PatternOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultilevelCampaign measures a seeded two-level Monte-Carlo
// campaign on the shared chunked-dispatch runner at the bench budget
// (single worker for a stable gate), the unit of work behind every
// multilevel study cell and /v1/multilevel/simulate request.
func BenchmarkMultilevelCampaign(b *testing.B) {
	m := heraModel(b, costmodel.Scenario3, 0.1)
	lf, ls := m.Rates(512)
	costs, err := multilevel.SingleLevelCosts(m, 512, 20.0/300)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := multilevel.FirstOrder(costs, lf, ls, m.Profile.Overhead(512))
	if err != nil {
		b.Fatal(err)
	}
	s, err := multilevel.NewSimulator(costs, plan.Pattern, lf, ls)
	if err != nil {
		b.Fatal(err)
	}
	cfg := multilevel.CampaignConfig{
		Runs: 40, Patterns: 60, Seed: 1, Workers: 1,
		HOfP: m.Profile.Overhead(512),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := s.SimulateContext(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// heteroBenchModel compiles the Hera-derived two-group study topology at
// the given comm coefficient — the per-cell unit of the hetero campaign.
func heteroBenchModel(b *testing.B, comm float64) core.HeteroModel {
	b.Helper()
	tp := experiments.HeteroStudyTopology(platform.Hera(), comm, 0.25)
	hm, err := hetero.CompileTopology(tp, costmodel.Scenario1, 0.1, 3600)
	if err != nil {
		b.Fatal(err)
	}
	return hm
}

// BenchmarkHeteroOptimize measures the cold joint heterogeneous solve —
// active-set scan, per-group (T, P) optima, harmonic work split — the
// per-cell unit of every hetero sweep and of /v1/hetero/optimize. Gated
// by scripts/bench.sh -compare.
func BenchmarkHeteroOptimize(b *testing.B) {
	hm := heteroBenchModel(b, 1e-5)
	for i := 0; i < b.N; i++ {
		if _, err := hetero.OptimalPattern(hm, hetero.PatternOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeteroSweep measures the warm-started comm-axis chain (the
// campaign/service sweep unit): a fresh SweepSolver walks the default
// comm grid, so the amortized ns/cell includes one cold anchor plus the
// warm bracket solves. Gated by scripts/bench.sh -compare.
func BenchmarkHeteroSweep(b *testing.B) {
	models := make([]core.HeteroModel, len(experiments.DefaultHeteroComms))
	for i, comm := range experiments.DefaultHeteroComms {
		models[i] = heteroBenchModel(b, comm)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := hetero.NewSweepSolver(hetero.SweepOptions{})
		for _, hm := range models {
			if _, err := s.Solve(hm); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(models)), "ns/cell")
}

// ---------------------------------------------------------------------
// Ablations called out in DESIGN.md.
// ---------------------------------------------------------------------

// BenchmarkInnerGolden vs BenchmarkInnerBrent: the two scalar minimizers
// on the real inner objective (overhead as a function of log-period).
func innerObjective(b *testing.B) func(float64) float64 {
	m := heraModel(b, costmodel.Scenario1, 0.1)
	return func(logT float64) float64 {
		return m.Overhead(math.Exp(logT), 512)
	}
}

func BenchmarkInnerGolden(b *testing.B) {
	obj := innerObjective(b)
	for i := 0; i < b.N; i++ {
		res := optimize.Golden(obj, 0, 25, 1e-10, 0)
		if !res.Converged {
			b.Fatal("golden did not converge")
		}
	}
}

func BenchmarkInnerBrent(b *testing.B) {
	obj := innerObjective(b)
	for i := 0; i < b.N; i++ {
		res := optimize.BrentMin(obj, 0, 25, 1e-10, 0)
		if !res.Converged {
			b.Fatal("brent did not converge")
		}
	}
}

// BenchmarkSimulateCampaign measures a full Monte-Carlo campaign (the
// unit of work behind every figure data point) at the bench budget.
func BenchmarkSimulateCampaign(b *testing.B) {
	m := heraModel(b, costmodel.Scenario1, 0.1)
	for i := 0; i < b.N; i++ {
		if _, err := sim.Simulate(m, 6240, 219, sim.RunConfig{
			Runs: 40, Patterns: 60, Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Service-layer benchmarks (cmd/amdahl-serve): the cold-vs-warm pair is
// the acceptance record of the PR-3 cache — warm requests must be at
// least 10× cheaper than cold solves.
// ---------------------------------------------------------------------

// BenchmarkServiceOptimizeCold measures an engine optimize that can never
// hit the cache (λ_ind varies per request): the full nested (T, P) solve
// plus the service bookkeeping (canonical key, single-flight, scheduler).
func BenchmarkServiceOptimizeCold(b *testing.B) {
	e := service.NewEngine(service.Options{ResultCacheSize: 16})
	m := heraModel(b, costmodel.Scenario3, 0.1)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		mi := m
		mi.LambdaInd = m.LambdaInd * (1 + float64(i)*1e-9)
		if _, _, err := e.Optimize(ctx, mi, optimize.PatternOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceOptimizeWarm measures the same request repeated: one
// LRU probe under the canonical model key.
func BenchmarkServiceOptimizeWarm(b *testing.B) {
	e := service.NewEngine(service.Options{})
	m := heraModel(b, costmodel.Scenario3, 0.1)
	ctx := context.Background()
	if _, _, err := e.Optimize(ctx, m, optimize.PatternOptions{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, cached, err := e.Optimize(ctx, m, optimize.PatternOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if !cached {
			b.Fatal("warm request missed the cache")
		}
	}
}

// BenchmarkServiceEvaluateWarm measures a warm evaluate: a cached Frozen
// probe plus the handful of kernel calls.
func BenchmarkServiceEvaluateWarm(b *testing.B) {
	e := service.NewEngine(service.Options{})
	m := heraModel(b, costmodel.Scenario1, 0.1)
	if _, err := e.Evaluate(m, 6240, 219); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Evaluate(m, 6240, 219); err != nil {
			b.Fatal(err)
		}
	}
}

// benchHTTPOptimize drives the full HTTP surface (request parsing, model
// build, engine, JSON response) against an in-process listener.
func benchHTTPOptimize(b *testing.B, body func(i int) []byte) {
	ts := httptest.NewServer(service.NewServer(service.NewEngine(service.Options{})))
	defer ts.Close()
	client := ts.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(body(i)))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		if _, err := bytes.NewBuffer(nil).ReadFrom(resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
}

// BenchmarkServiceHTTPOptimizeCold is the end-to-end cold request: every
// iteration carries a distinct λ override, so every request solves.
func BenchmarkServiceHTTPOptimizeCold(b *testing.B) {
	base := platform.Hera().LambdaInd
	benchHTTPOptimize(b, func(i int) []byte {
		return []byte(fmt.Sprintf(
			`{"model":{"platform":"hera","scenario":3,"lambda":%.17g}}`,
			base*(1+float64(i+1)*1e-9)))
	})
}

// BenchmarkServiceHTTPOptimizeWarm is the end-to-end warm request; the
// gap to the cold benchmark is what the cache buys a real client.
func BenchmarkServiceHTTPOptimizeWarm(b *testing.B) {
	body := []byte(`{"model":{"platform":"hera","scenario":3}}`)
	benchHTTPOptimize(b, func(int) []byte { return body })
}

// BenchmarkServiceSweepCold measures a whole 16-cell axis solved as one
// engine sweep job with nothing cached (λ scale varies per iteration):
// the per-request price of a cold /v1/sweep, to be read against 16 cold
// /v1/optimize requests.
func BenchmarkServiceSweepCold(b *testing.B) {
	e := service.NewEngine(service.Options{ResultCacheSize: 16})
	base := heraModel(b, costmodel.Scenario3, 0.1)
	ctx := context.Background()
	lambdas := xmath.Logspace(1e-12, 1e-8, 16)
	for i := 0; i < b.N; i++ {
		models := make([]core.Model, len(lambdas))
		for j, l := range lambdas {
			m := base
			m.LambdaInd = l * (1 + float64(i)*1e-9)
			models[j] = m
		}
		if _, _, err := e.Sweep(ctx, models, optimize.PatternOptions{}, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceSweepWarm measures the same axis replayed from the
// per-cell cache.
func BenchmarkServiceSweepWarm(b *testing.B) {
	e := service.NewEngine(service.Options{})
	base := heraModel(b, costmodel.Scenario3, 0.1)
	ctx := context.Background()
	models := make([]core.Model, 16)
	for j, l := range xmath.Logspace(1e-12, 1e-8, 16) {
		m := base
		m.LambdaInd = l
		models[j] = m
	}
	if _, _, err := e.Sweep(ctx, models, optimize.PatternOptions{}, false); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells, _, err := e.Sweep(ctx, models, optimize.PatternOptions{}, false)
		if err != nil {
			b.Fatal(err)
		}
		if !cells[0].Cached {
			b.Fatal("warm sweep missed the cache")
		}
	}
}

// BenchmarkFleetLoadGen is the fleet load generator: a 3-replica fleet
// behind the consistent-hash router, driven concurrently with a fixed
// mix of requests over 16 distinct models (warmed once, so the steady
// state measured is the sharded-cache serving path — the fleet's whole
// point). Beyond the gated ns/op (≈ mean request latency divided by the
// load-generator parallelism), it reports fleet throughput (qps) and
// client-observed tail latency (p50-ns, p99-ns), which bench.sh records
// into BENCH_<N>.json.
func BenchmarkFleetLoadGen(b *testing.B) {
	peers := make(map[string]string, 3)
	for i := 1; i <= 3; i++ {
		ts := httptest.NewServer(service.NewServer(service.NewEngine(service.Options{})))
		defer ts.Close()
		peers[fmt.Sprintf("p%d", i)] = ts.URL
	}
	rt, err := fleet.NewRouter(fleet.RouterOptions{Peers: peers, HedgeAfter: -1})
	if err != nil {
		b.Fatal(err)
	}
	front := httptest.NewServer(rt)
	defer front.Close()
	client := front.Client()

	bodies := make([][]byte, 16)
	for i := range bodies {
		bodies[i] = []byte(fmt.Sprintf(
			`{"model":{"platform":"hera","scenario":3,"alpha":%.17g}}`,
			0.05+float64(i)*0.01))
	}
	do := func(body []byte) time.Duration {
		start := time.Now()
		resp, err := client.Post(front.URL+"/v1/optimize", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		if _, err := bytes.NewBuffer(nil).ReadFrom(resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		return time.Since(start)
	}
	for _, body := range bodies {
		do(body) // warm every shard once
	}

	var mu sync.Mutex
	latencies := make([]time.Duration, 0, b.N)
	var n atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		local := make([]time.Duration, 0, 256)
		for pb.Next() {
			i := n.Add(1) - 1
			local = append(local, do(bodies[i%uint64(len(bodies))]))
		}
		mu.Lock()
		latencies = append(latencies, local...)
		mu.Unlock()
	})
	b.StopTimer()
	if len(latencies) == 0 {
		return
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	b.ReportMetric(float64(len(latencies))/b.Elapsed().Seconds(), "qps")
	b.ReportMetric(float64(latencies[len(latencies)/2]), "p50-ns")
	b.ReportMetric(float64(latencies[len(latencies)*99/100]), "p99-ns")
}
