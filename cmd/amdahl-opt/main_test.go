package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// capture redirects stdout around fn and returns what was printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), errRun
}

func TestRunDefault(t *testing.T) {
	out, err := capture(t, func() error { return run(nil) })
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Hera", "first-order", "numerical", "Young", "validity"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
	// Hera scenario 1 at α=0.1: P* ≈ 219, T* ≈ 6239.
	if !strings.Contains(out, "218.9") || !strings.Contains(out, "6239") {
		t.Errorf("Theorem 2 numbers missing:\n%s", out)
	}
}

func TestRunScenario6HasNoFirstOrder(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-scenario", "6"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "no bounded first-order optimum") {
		t.Errorf("scenario 6 should explain the missing first-order row:\n%s", out)
	}
}

func TestRunLambdaOverride(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-lambda", "1e-10"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1e-10") {
		t.Errorf("λ override not reflected:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-platform", "nonexistent"}); err == nil {
		t.Error("unknown platform accepted")
	}
	if err := run([]string{"-scenario", "9"}); err == nil {
		t.Error("scenario 9 accepted")
	}
	if err := run([]string{"-alpha", "1.5"}); err == nil {
		t.Error("α > 1 accepted")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
