// Command amdahl-opt computes the optimal checkpointing pattern — period
// T* and processor allocation P* — for a platform, resilience scenario
// and application, using both the paper's first-order formulas (Theorems
// 2 and 3) and the numerical optimization of the exact overhead
// (Proposition 1), plus the Young/Daly and iterative-relaxation baselines.
//
// Usage:
//
//	amdahl-opt -platform hera -scenario 1 -alpha 0.1
//	amdahl-opt -platform atlas -scenario 3 -lambda 1e-10 -downtime 1800
package main

import (
	"flag"
	"fmt"
	"os"

	"amdahlyd/internal/baselines"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/experiments"
	"amdahlyd/internal/optimize"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "amdahl-opt:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("amdahl-opt", flag.ContinueOnError)
	platName := fs.String("platform", "hera", "platform name (hera, atlas, coastal, coastalssd)")
	scenario := fs.Int("scenario", 1, "resilience scenario 1-6 (Table III)")
	alpha := fs.Float64("alpha", 0.1, "sequential fraction α (0 selects perfectly parallel)")
	lambda := fs.Float64("lambda", 0, "override individual error rate λ_ind (1/s); 0 keeps the platform value")
	downtime := fs.Float64("downtime", 3600, "downtime D after a fail-stop error (s)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	pl, err := platform.Lookup(*platName)
	if err != nil {
		return err
	}
	if *lambda > 0 {
		pl = pl.WithLambda(*lambda)
	}
	sc := costmodel.Scenario(*scenario)
	if !sc.Valid() {
		return fmt.Errorf("scenario %d outside 1-6", *scenario)
	}
	m, err := experiments.BuildModel(pl, sc, *alpha, *downtime)
	if err != nil {
		return err
	}

	fmt.Printf("Platform %s: λ_ind=%.3g /s (MTBF %.1f years), f=%.4f, s=%.4f\n",
		pl.Name, pl.LambdaInd, 1/pl.LambdaInd/(365.25*86400),
		pl.FailStopFraction, pl.SilentFraction)
	fmt.Printf("%v (%s), α=%g, D=%gs\n\n", sc, sc.Describe(), *alpha, *downtime)

	tb := report.NewTable("Optimal patterns",
		"method", "P*", "T* (s)", "predicted overhead", "note")

	if fo, err := m.FirstOrder(); err == nil {
		tb.AddRow("first-order (Thm 2/3)", report.Fmt(fo.P), report.Fmt(fo.T),
			report.Fmt(fo.Overhead), fo.Class.String())
	} else {
		tb.AddRow("first-order (Thm 2/3)", "-", "-", "-", err.Error())
	}

	num, err := optimize.OptimalPattern(m, optimize.PatternOptions{})
	if err != nil {
		return err
	}
	note := ""
	if num.AtPBound {
		note = "at search bound (unbounded allocation)"
	}
	tb.AddRow("numerical (exact model)", report.Fmt(num.P), report.Fmt(num.T),
		report.Fmt(num.Overhead), note)

	if plan, err := baselines.PlanYoung(m, num.P); err == nil {
		tb.AddRow("Young period at P*", report.Fmt(num.P), report.Fmt(plan.T),
			report.Fmt(plan.TrueOverhead), "fail-stop-only period, true cost shown")
	}
	if sol, iters, err := baselines.IterativeRelaxation(m, 0, 0); err == nil {
		tb.AddRow("iterative relaxation [14]", report.Fmt(sol.P), report.Fmt(sol.T),
			report.Fmt(sol.Overhead), fmt.Sprintf("converged in %d iters", iters))
	}

	if err := tb.Render(os.Stdout); err != nil {
		return err
	}

	v := m.CheckValidity(num.T, num.P)
	fmt.Printf("\nfirst-order validity at the optimum: λ·(C+V)=%.3g, λ·T=%.3g, ok=%v\n",
		v.LambdaCV, v.LambdaT, v.OK)
	return nil
}
