package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunBadAddrFailsFast(t *testing.T) {
	if err := run([]string{"-addr", "missing-a-port"}); err == nil {
		t.Error("unusable listen address accepted")
	}
}

func TestLogMiddlewarePreservesStatus(t *testing.T) {
	h := logRequests(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusTeapot)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if rec.Code != http.StatusTeapot {
		t.Errorf("status %d, want %d", rec.Code, http.StatusTeapot)
	}
	if !strings.Contains(rec.Body.String(), "nope") {
		t.Error("body lost through the middleware")
	}
}
