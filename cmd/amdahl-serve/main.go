// Command amdahl-serve exposes the Amdahl/Young-Daly analyses as a
// long-running JSON-over-HTTP planning service: evaluate (exact overhead
// and pattern time at a given (T, P)), optimize (the numerical optimum
// (T*, P*)), simulate (seeded Monte-Carlo campaigns, including the
// non-exponential -dist laws), sweep (a whole figure axis solved as one
// warm-start chain, streamed back as NDJSON rows — single-level, or
// two-level with "multilevel"), and the two-level protocol endpoints
// multilevel/optimize (the joint (T*, K*, P*) optimum) and
// multilevel/simulate (seeded two-level campaigns).
//
// One process amortizes repeated configurations across requests: compiled
// evaluators, optimizer results and campaign results are cached under
// canonical model keys, concurrent identical requests solve once
// (single-flight), heavy jobs run on a bounded scheduler, and a client
// hang-up cancels its in-flight campaign. Results are bit-identical to
// the amdahl-opt / amdahl-sim CLI tools for the same parameters (sweep
// cells match per-cell optimization within the refinement tolerance, or
// bitwise with "cold":true).
//
// With -router the same binary fronts a fleet of replicas instead of
// serving itself: requests shard by canonical model key on a
// consistent-hash ring, slow owners are hedged to their ring successor,
// dead ones failed over with bounded backoff, and ring membership is
// driven by /readyz health probes with peer warm-fill on rejoin
// (internal/fleet).
//
// Usage:
//
//	amdahl-serve -addr :8080
//	curl -s localhost:8080/v1/optimize -d '{"model":{"platform":"hera","scenario":1}}'
//	curl -s localhost:8080/v1/simulate -d '{"model":{"platform":"hera"},"runs":100,"seed":1}'
//	curl -s localhost:8080/v1/sweep -d '{"model":{"platform":"hera","scenario":3},"axis":"lambda","values":[1e-10,2e-10,4e-10]}'
//	curl -s localhost:8080/v1/multilevel/optimize -d '{"model":{"platform":"hera","scenario":3},"in_mem_fraction":0.0667}'
//	curl -s localhost:8080/v1/multilevel/simulate -d '{"model":{"platform":"hera","scenario":3},"runs":100,"seed":1}'
//	curl -s localhost:8080/v1/stats
//
//	amdahl-serve -addr :8090 -router -peers a=http://h1:8080,b=http://h2:8080
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"time"

	"amdahlyd/internal/fleet"
	"amdahlyd/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "amdahl-serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("amdahl-serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	frozenCache := fs.Int("frozen-cache", 0, "compiled-evaluator cache entries (0 = default 4096)")
	resultCache := fs.Int("result-cache", 0, "optimizer/campaign result cache entries per cache (0 = default 1024)")
	maxConcurrent := fs.Int("max-concurrent", 0, "concurrent optimize/simulate jobs (0 = GOMAXPROCS)")
	maxQueued := fs.Int("max-queued", 0, "jobs waiting for a scheduler slot before shedding load with 503 (0 = 8×max-concurrent, negative = unbounded)")
	simWorkers := fs.Int("sim-workers", 0, "worker pool per campaign (0 = 1; results are worker-count independent)")
	shutdownTimeout := fs.Duration("shutdown-timeout", 15*time.Second, "graceful-shutdown budget: in-flight work (including NDJSON sweep streams) drains within it")
	router := fs.Bool("router", false, "run as a fleet router over -peers instead of serving an engine")
	peersFlag := fs.String("peers", "", "router mode: comma-separated replica base URLs, each \"name=url\" or bare \"url\"")
	hedgeAfter := fs.Duration("hedge-after", 150*time.Millisecond, "router mode: hedge a slow owner to its ring successor after this long (negative disables)")
	healthInterval := fs.Duration("health-interval", 500*time.Millisecond, "router mode: /readyz probe interval driving ring membership")
	quiet := fs.Bool("quiet", false, "suppress per-request logging")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var handler http.Handler
	var apiSrv *service.Server // replica mode only: owns the drain lifecycle
	var checker *fleet.HealthChecker
	if *router {
		peers, err := parsePeers(*peersFlag)
		if err != nil {
			return err
		}
		rt, err := fleet.NewRouter(fleet.RouterOptions{
			Peers:      peers,
			HedgeAfter: *hedgeAfter,
		})
		if err != nil {
			return err
		}
		checker = fleet.NewHealthChecker(rt.Ring(), peers, fleet.HealthOptions{
			Interval: *healthInterval,
		})
		checker.Start()
		defer checker.Stop()
		handler = rt
	} else {
		engine := service.NewEngine(service.Options{
			FrozenCacheSize: *frozenCache,
			ResultCacheSize: *resultCache,
			MaxConcurrent:   *maxConcurrent,
			MaxQueued:       *maxQueued,
			SimWorkers:      *simWorkers,
		})
		apiSrv = service.NewServer(engine)
		handler = apiSrv
	}
	if !*quiet {
		handler = logRequests(handler)
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Slow-client protection: a peer that never finishes its headers or
		// parks an idle keep-alive connection must not hold a socket forever.
		// Request *bodies* are already bounded (MaxBytesReader in the
		// handlers) and long responses are legitimate (sweep campaigns), so
		// no blanket Read/WriteTimeout — those would kill honest work.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Graceful shutdown: an interrupt stops accepting, lets in-flight
	// requests finish (their own contexts still cancel on client
	// hang-up), and forces exit after the -shutdown-timeout budget.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		mode := "replica"
		if *router {
			mode = "router"
		}
		log.Printf("amdahl-serve (%s) listening on %s", mode, *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("amdahl-serve shutting down (budget %s)", *shutdownTimeout)
	if apiSrv != nil {
		// Flip /readyz to 503 now (routers stop sending work) and cut
		// still-running sweep streams cleanly at a row boundary when 90% of
		// the budget is gone — the remaining 10% lets http.Server.Shutdown
		// flush the trailing error lines instead of racing them.
		apiSrv.StartDrain(*shutdownTimeout * 9 / 10)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// parsePeers decodes the -peers flag: comma-separated entries, each
// "name=url" or a bare URL (named by its host:port).
func parsePeers(s string) (map[string]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, errors.New("-router needs -peers")
	}
	peers := make(map[string]string)
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, base, ok := strings.Cut(entry, "=")
		if !ok {
			base = entry
			u, err := url.Parse(entry)
			if err != nil || u.Host == "" {
				return nil, fmt.Errorf("-peers entry %q is not a URL (use name=url or an absolute url)", entry)
			}
			name = u.Host
		}
		if _, dup := peers[name]; dup {
			return nil, fmt.Errorf("-peers names %q twice", name)
		}
		peers[name] = base
	}
	return peers, nil
}

// logRequests is a minimal request-log middleware.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		//lint:allow walltime request-log latency measurement; never reaches a response body or cache key
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		//lint:allow walltime request-log latency measurement; never reaches a response body or cache key
		log.Printf("%s %s %d %s", r.Method, r.URL.Path, sw.status, time.Since(start))
	})
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// Flush preserves the streaming capability the sweep and router paths
// rely on — without it the logging wrapper would silently buffer NDJSON
// rows until the response ends.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
