// Command amdahl-serve exposes the Amdahl/Young-Daly analyses as a
// long-running JSON-over-HTTP planning service: evaluate (exact overhead
// and pattern time at a given (T, P)), optimize (the numerical optimum
// (T*, P*)), simulate (seeded Monte-Carlo campaigns, including the
// non-exponential -dist laws), sweep (a whole figure axis solved as one
// warm-start chain, streamed back as NDJSON rows — single-level, or
// two-level with "multilevel"), and the two-level protocol endpoints
// multilevel/optimize (the joint (T*, K*, P*) optimum) and
// multilevel/simulate (seeded two-level campaigns).
//
// One process amortizes repeated configurations across requests: compiled
// evaluators, optimizer results and campaign results are cached under
// canonical model keys, concurrent identical requests solve once
// (single-flight), heavy jobs run on a bounded scheduler, and a client
// hang-up cancels its in-flight campaign. Results are bit-identical to
// the amdahl-opt / amdahl-sim CLI tools for the same parameters (sweep
// cells match per-cell optimization within the refinement tolerance, or
// bitwise with "cold":true).
//
// Usage:
//
//	amdahl-serve -addr :8080
//	curl -s localhost:8080/v1/optimize -d '{"model":{"platform":"hera","scenario":1}}'
//	curl -s localhost:8080/v1/simulate -d '{"model":{"platform":"hera"},"runs":100,"seed":1}'
//	curl -s localhost:8080/v1/sweep -d '{"model":{"platform":"hera","scenario":3},"axis":"lambda","values":[1e-10,2e-10,4e-10]}'
//	curl -s localhost:8080/v1/multilevel/optimize -d '{"model":{"platform":"hera","scenario":3},"in_mem_fraction":0.0667}'
//	curl -s localhost:8080/v1/multilevel/simulate -d '{"model":{"platform":"hera","scenario":3},"runs":100,"seed":1}'
//	curl -s localhost:8080/v1/stats
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"amdahlyd/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "amdahl-serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("amdahl-serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	frozenCache := fs.Int("frozen-cache", 0, "compiled-evaluator cache entries (0 = default 4096)")
	resultCache := fs.Int("result-cache", 0, "optimizer/campaign result cache entries per cache (0 = default 1024)")
	maxConcurrent := fs.Int("max-concurrent", 0, "concurrent optimize/simulate jobs (0 = GOMAXPROCS)")
	maxQueued := fs.Int("max-queued", 0, "jobs waiting for a scheduler slot before shedding load with 503 (0 = 8×max-concurrent, negative = unbounded)")
	simWorkers := fs.Int("sim-workers", 0, "worker pool per campaign (0 = 1; results are worker-count independent)")
	quiet := fs.Bool("quiet", false, "suppress per-request logging")
	if err := fs.Parse(args); err != nil {
		return err
	}

	engine := service.NewEngine(service.Options{
		FrozenCacheSize: *frozenCache,
		ResultCacheSize: *resultCache,
		MaxConcurrent:   *maxConcurrent,
		MaxQueued:       *maxQueued,
		SimWorkers:      *simWorkers,
	})
	var handler http.Handler = service.NewServer(engine)
	if !*quiet {
		handler = logRequests(handler)
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Slow-client protection: a peer that never finishes its headers or
		// parks an idle keep-alive connection must not hold a socket forever.
		// Request *bodies* are already bounded (MaxBytesReader in the
		// handlers) and long responses are legitimate (sweep campaigns), so
		// no blanket Read/WriteTimeout — those would kill honest work.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Graceful shutdown: an interrupt stops accepting, lets in-flight
	// requests finish (their own contexts still cancel on client
	// hang-up), and forces exit after a grace period.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("amdahl-serve listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("amdahl-serve shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// logRequests is a minimal request-log middleware.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		log.Printf("%s %s %d %s", r.Method, r.URL.Path, sw.status, time.Since(start))
	})
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}
