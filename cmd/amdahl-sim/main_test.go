package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), errRun
}

func TestRunSmall(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-runs", "20", "-patterns", "20", "-T", "6240", "-P", "219"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"PATTERN(T=6240", "mean pattern time", "execution overhead", "fail-stop"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestRunDefaultsToTheorem1Period(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-runs", "5", "-patterns", "5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Hera's default P=512, Theorem-1 period ≈ 6397.6 s (prints 6398
	// at 4 significant digits).
	if !strings.Contains(out, "P=512") || !strings.Contains(out, "T=6398") {
		t.Errorf("defaults not applied:\n%s", out)
	}
}

func TestRunMachineSimulator(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-runs", "5", "-patterns", "5", "-P", "64", "-machine"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "machine-level") {
		t.Errorf("machine simulator not selected:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-platform", "unknown"}); err == nil {
		t.Error("unknown platform accepted")
	}
	if err := run([]string{"-scenario", "0"}); err == nil {
		t.Error("scenario 0 accepted")
	}
	if err := run([]string{"-runs", "0", "-patterns", "0", "-T", "-5"}); err == nil {
		t.Error("negative period accepted")
	}
	if err := run([]string{"-machine", "-P", "100.5", "-runs", "2", "-patterns", "2"}); err == nil {
		t.Error("fractional P accepted for machine simulation")
	}
}
