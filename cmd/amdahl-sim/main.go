// Command amdahl-sim prices a concrete pattern PATTERN(T, P) by
// Monte-Carlo simulation of the VC protocol and compares the result with
// the exact analytical prediction of Proposition 1.
//
// Usage:
//
//	amdahl-sim -platform hera -scenario 1 -T 6240 -P 219
//	amdahl-sim -platform hera -scenario 3 -T 9000 -P 258 -machine -runs 100
package main

import (
	"flag"
	"fmt"
	"os"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/experiments"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/report"
	"amdahlyd/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "amdahl-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("amdahl-sim", flag.ContinueOnError)
	platName := fs.String("platform", "hera", "platform name")
	scenario := fs.Int("scenario", 1, "resilience scenario 1-6")
	alpha := fs.Float64("alpha", 0.1, "sequential fraction α")
	downtime := fs.Float64("downtime", 3600, "downtime D (s)")
	period := fs.Float64("T", 0, "checkpointing period (s); 0 uses the Theorem 1 optimum")
	procs := fs.Float64("P", 0, "processor count; 0 uses the platform's deployed count")
	runs := fs.Int("runs", 500, "Monte-Carlo runs")
	patterns := fs.Int("patterns", 500, "patterns per run")
	seed := fs.Uint64("seed", 1, "random seed")
	machine := fs.Bool("machine", false, "use the machine-level event simulator (slower, per-processor failures)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	pl, err := platform.Lookup(*platName)
	if err != nil {
		return err
	}
	sc := costmodel.Scenario(*scenario)
	if !sc.Valid() {
		return fmt.Errorf("scenario %d outside 1-6", *scenario)
	}
	m, err := experiments.BuildModel(pl, sc, *alpha, *downtime)
	if err != nil {
		return err
	}
	p := *procs
	if p == 0 {
		p = pl.Processors
	}
	t := *period
	if t == 0 {
		t = m.OptimalPeriodFixedP(p)
	}

	fmt.Printf("Simulating PATTERN(T=%.4g s, P=%.4g) on %s, %v, α=%g, D=%gs\n",
		t, p, pl.Name, sc, *alpha, *downtime)
	fmt.Printf("  %d runs × %d patterns, seed %d, simulator: %s\n\n",
		*runs, *patterns, *seed, map[bool]string{false: "pattern-level", true: "machine-level"}[*machine])

	res, err := sim.Simulate(m, t, p, sim.RunConfig{
		Runs: *runs, Patterns: *patterns, Seed: *seed, Machine: *machine,
	})
	if err != nil {
		return err
	}

	// CI95 goes through report.Fmt: a single-run campaign has no interval
	// (NaN) and must read "-", not "NaN".
	exactE := m.ExactPatternTime(t, p)
	fmt.Printf("mean pattern time : %.6g s ± %s (CI95), exact formula %.6g s\n",
		res.MeanPatternTime.Mean, report.Fmt(res.MeanPatternTime.CI95), exactE)
	fmt.Printf("execution overhead: %.6g ± %s (CI95), exact formula %.6g\n",
		res.Overhead.Mean, report.Fmt(res.Overhead.CI95), m.Overhead(t, p))
	fmt.Printf("events            : %d fail-stop, %d silent detections, %d recoveries\n",
		res.FailStops, res.SilentDetections, res.Recoveries)
	return nil
}
