package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"amdahlyd/internal/analyzers/analysis"
)

// outputOptions selects how surviving diagnostics are rendered. The zero
// value is the human text form ("file:line:col: message [analyzer]" on
// stderr); -json switches to NDJSON on stdout for tooling, and
// -format=github to workflow commands GitHub renders as inline PR
// annotations.
type outputOptions struct {
	json   bool
	format string // "" or "text" for the default; "github" for ::error commands
}

func (o outputOptions) validate() error {
	switch o.format {
	case "", "text", "github":
		return nil
	}
	return fmt.Errorf("unknown -format=%s (use text or github)", o.format)
}

// jsonDiagnostic is one NDJSON record. Suppressible distinguishes
// analyzer findings (a //lint:allow with a reason silences them) from
// the lintdirective meta-diagnostics about the directives themselves,
// which only deleting or completing the directive can clear.
type jsonDiagnostic struct {
	File         string `json:"file"`
	Line         int    `json:"line"`
	Col          int    `json:"col"`
	Analyzer     string `json:"analyzer"`
	Message      string `json:"message"`
	Suppressible bool   `json:"suppressible"`
}

// emitDiagnostics renders diags in the selected format and reports
// whether any were emitted.
func emitDiagnostics(diags []analysis.Diagnostic, opts outputOptions) bool {
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		switch {
		case opts.json:
			rec := jsonDiagnostic{
				File:         relPath(d.Position.Filename),
				Line:         d.Position.Line,
				Col:          d.Position.Column,
				Analyzer:     d.Analyzer,
				Message:      d.Message,
				Suppressible: d.Analyzer != "lintdirective",
			}
			if err := enc.Encode(rec); err != nil {
				log.Fatal(err)
			}
		case opts.format == "github":
			// Workflow-command grammar: properties are comma-separated,
			// the message follows "::" with newlines %-escaped.
			fmt.Printf("::error file=%s,line=%d,col=%d,title=amdahl-lint %s::%s\n",
				relPath(d.Position.Filename), d.Position.Line, d.Position.Column,
				d.Analyzer, escapeWorkflowData(d.Message))
		default:
			fmt.Fprintln(os.Stderr, d)
		}
	}
	return len(diags) > 0
}

// relPath rewrites an absolute position to be relative to the working
// directory when possible: GitHub annotations match files by
// workspace-relative path, and shorter paths read better in NDJSON too.
func relPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil || rel == "" || rel[0] == '.' && len(rel) > 1 && rel[1] == '.' {
		return path
	}
	return rel
}

// escapeWorkflowData applies the %-escapes workflow command data needs
// so multi-line or %-bearing messages survive as one annotation.
func escapeWorkflowData(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '%':
			out = append(out, "%25"...)
		case '\r':
			out = append(out, "%0D"...)
		case '\n':
			out = append(out, "%0A"...)
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
