// Command amdahl-lint is the repository's invariant checker: a
// multichecker over the nine analyzers in internal/analyzers, enforcing
// mechanically what earlier PRs enforced by reviewer memory (frozen-
// kernel routing, NaN-proof validation, atomic artifact writes,
// deterministic randomness, canonical cache-key tokens, sorted map
// output, wall-clock containment, seed provenance, centralized retry
// classification).
//
// Standalone (source) mode loads packages through `go list -export` and
// type-checks them against the toolchain's export data, analyzing in
// dependency order so facts-based analyzers (seedflow, errclass) see
// their dependencies' facts:
//
//	amdahl-lint ./...
//	amdahl-lint -run=nanguard,frozenloop amdahlyd/internal/sim
//	amdahl-lint -json ./...            # NDJSON, one diagnostic per line
//	amdahl-lint -format=github ./...   # ::error annotations for Actions
//
// It also speaks the `go vet -vettool` protocol (-V=full, -flags, and a
// single *.cfg argument describing one compilation unit, facts carried
// between units in the .vetx stamp files), so the same binary drives
// both the CI lint job and
//
//	go vet -vettool=$(pwd)/amdahl-lint ./...
//
// Exit status is 1 when any diagnostic survives //lint:allow
// suppression, 0 otherwise. Suppression syntax and the rule-to-analyzer
// map live in DESIGN.md ("Enforced invariants").
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"amdahlyd/internal/analyzers"
	"amdahlyd/internal/analyzers/analysis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("amdahl-lint: ")

	printFlags := flag.Bool("flags", false, "print analyzer flags in JSON (go vet protocol)")
	listOnly := flag.Bool("list", false, "list analyzers and exit")
	runNames := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit diagnostics as NDJSON on stdout (file, line, analyzer, message, suppressible)")
	format := flag.String("format", "", "diagnostic format: text (default) or github (workflow ::error annotations)")
	flag.Var(versionFlag{}, "V", "print version and exit (go vet protocol)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: amdahl-lint [-run=names] [packages]\n       amdahl-lint unit.cfg  (go vet -vettool mode)\n\nanalyzers:\n")
		for _, a := range analyzers.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *printFlags {
		printFlagsJSON()
		return
	}
	suite := selectAnalyzers(*runNames)
	if *listOnly {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	opts := outputOptions{json: *jsonOut, format: *format}
	if err := opts.validate(); err != nil {
		log.Fatal(err)
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0], suite, opts))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", args...)
	if err != nil {
		log.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, suite)
	if err != nil {
		log.Fatal(err)
	}
	if emitDiagnostics(diags, opts) {
		os.Exit(1)
	}
}

func selectAnalyzers(names string) []*analysis.Analyzer {
	all := analyzers.All()
	if names == "" {
		return all
	}
	want := map[string]bool{}
	for _, n := range strings.Split(names, ",") {
		want[strings.TrimSpace(n)] = true
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	for n := range want {
		log.Fatalf("unknown analyzer %q (run amdahl-lint -list)", n)
	}
	return out
}

// versionFlag implements the -V=full protocol go vet uses to fingerprint
// vettools for its build cache: print "<path> version <id>" where the id
// changes whenever the binary does.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel buildID=%02x\n", exe, h.Sum(nil))
	os.Exit(0)
	return nil
}

// printFlagsJSON answers `go vet`'s -flags query: the JSON list of flags
// the build tool may forward to the vettool.
func printFlagsJSON() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		out = append(out, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(out, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}
