package main

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"amdahlyd/internal/analyzers/analysis"
)

// vetConfig is the compilation-unit description `go vet -vettool` hands
// the tool as a JSON .cfg file (the unitchecker protocol). Only the
// fields this driver consumes are declared.
type vetConfig struct {
	ID                        string
	Compiler                  string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one compilation unit under the go vet protocol and
// returns the process exit code. Facts are not used by this suite, so
// the vetx output is written empty — its existence is all `go vet`
// requires for caching.
func runVetUnit(cfgPath string, suite []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode vet config %s: %v", cfgPath, err)
	}
	if cfg.VetxOutput != "" {
		//lint:allow atomicwrite vetx facts file owned by the go vet cache; only its existence matters
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			log.Fatal(err)
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// Generated test-main units and the _test.go halves of test variants
	// are out of scope: the invariants govern production code, and the
	// plain files of an in-package test unit are still analyzed below.
	if strings.HasSuffix(cfg.ImportPath, ".test") {
		return 0
	}
	var goFiles []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(filepath.Base(f), "_test.go") {
			goFiles = append(goFiles, f)
		}
	}
	if len(goFiles) == 0 {
		return 0
	}

	fset := token.NewFileSet()
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	compImporter := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compImporter.Import(path)
	})

	pkg, err := analysis.TypeCheckFiles(fset, cfg.ImportPath, goFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		log.Fatal(err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, suite)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
