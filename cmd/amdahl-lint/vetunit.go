package main

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"amdahlyd/internal/analyzers/analysis"
)

// vetConfig is the compilation-unit description `go vet -vettool` hands
// the tool as a JSON .cfg file (the unitchecker protocol). Only the
// fields this driver consumes are declared.
type vetConfig struct {
	ID                        string
	Compiler                  string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one compilation unit under the go vet protocol and
// returns the process exit code. The .vetx stamp files carry real
// payloads now: the facts exported while analyzing this unit, merged
// with everything imported from the dependencies' vetx files, so
// cross-package analyzers (seedflow, errclass) see the same fact flow
// under `go vet -vettool` as under the source-mode driver. Dependency
// units arrive with VetxOnly set — go vet wants only their facts — and
// are analyzed best-effort: a dependency outside the module that this
// driver cannot re-type-check (some cgo-heavy stdlib units) degrades to
// passing its imported facts through, never to a hard failure.
func runVetUnit(cfgPath string, suite []*analysis.Analyzer, opts outputOptions) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode vet config %s: %v", cfgPath, err)
	}
	imported := analysis.NewFactSet()
	for _, vetxFile := range cfg.PackageVetx {
		data, err := os.ReadFile(vetxFile)
		if err != nil {
			continue // a dep whose vetx another tool owns; nothing to import
		}
		facts, err := analysis.DecodeFacts(data)
		if err != nil {
			continue // legacy or foreign stamp file: no facts to be had
		}
		imported.Merge(facts)
	}

	diags, facts := analyzeVetUnit(cfg, suite, imported)
	if cfg.VetxOutput != "" {
		payload, err := facts.Encode()
		if err != nil {
			log.Fatal(err)
		}
		//lint:allow atomicwrite vetx facts file owned by the go vet cache; a torn write is re-run, not trusted
		if err := os.WriteFile(cfg.VetxOutput, payload, 0o666); err != nil {
			log.Fatal(err)
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	if emitDiagnostics(diags, opts) {
		return 1
	}
	return 0
}

// analyzeVetUnit type-checks and analyzes the unit, returning its
// diagnostics and the cumulative fact set. Units that are out of scope
// (test mains, pure test halves) or that cannot be type-checked while
// only facts are wanted contribute their imported facts unchanged.
func analyzeVetUnit(cfg *vetConfig, suite []*analysis.Analyzer, imported *analysis.FactSet) ([]analysis.Diagnostic, *analysis.FactSet) {
	// Generated test-main units and the _test.go halves of test variants
	// are out of scope: the invariants govern production code, and the
	// plain files of an in-package test unit are still analyzed below.
	if strings.HasSuffix(cfg.ImportPath, ".test") {
		return nil, imported
	}
	var goFiles []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(filepath.Base(f), "_test.go") {
			goFiles = append(goFiles, f)
		}
	}
	if len(goFiles) == 0 {
		return nil, imported
	}

	fset := token.NewFileSet()
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	compImporter := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compImporter.Import(path)
	})

	pkg, err := analysis.TypeCheckFiles(fset, cfg.ImportPath, goFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure || cfg.VetxOnly {
			return nil, imported
		}
		log.Fatal(err)
	}
	pkg.DepOnly = cfg.VetxOnly
	diags, facts, err := analysis.RunWithFacts([]*analysis.Package{pkg}, suite, imported)
	if err != nil {
		if cfg.VetxOnly {
			return nil, imported
		}
		log.Fatal(err)
	}
	return diags, facts
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
