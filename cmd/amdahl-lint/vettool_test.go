package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLint compiles the amdahl-lint binary into a temp dir and returns
// its absolute path.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "amdahl-lint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build amdahl-lint: %v\n%s", err, out)
	}
	return bin
}

// writeScratchModule lays out a throwaway module under dir.
func writeScratchModule(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func runGoVet(t *testing.T, dir, vettool string) string {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+vettool, "./...")
	cmd.Dir = dir
	out, _ := cmd.CombinedOutput()
	return string(out)
}

// TestVettoolSuppressionAndStaleDirectives exercises the //lint:allow
// machinery through the `go vet -vettool` unitchecker path, which source
// mode tests cannot cover: a reasoned directive suppresses its
// diagnostic, a reasonless one is rejected, and a directive that
// suppresses nothing is reported stale.
func TestVettoolSuppressionAndStaleDirectives(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	bin := buildLint(t)
	dir := t.TempDir()
	writeScratchModule(t, dir, map[string]string{
		"go.mod": "module scratch\n\ngo 1.24\n",
		"lib/lib.go": `package lib

import "os"

func suppressed() error {
	//lint:allow atomicwrite scratch fixture: suppression must survive the vettool path
	return os.WriteFile("suppressed", nil, 0o644)
}

func unsuppressed() error {
	return os.WriteFile("unsuppressed", nil, 0o644)
}

func stale() int {
	//lint:allow atomicwrite nothing below violates, so this directive is stale
	return 1
}
`,
	})
	out := runGoVet(t, dir, bin)

	// The suppressed write is on line 7, the unsuppressed one on line 11.
	if strings.Contains(out, "lib.go:7:") {
		t.Errorf("reasoned //lint:allow did not suppress under go vet:\n%s", out)
	}
	if !strings.Contains(out, "lib.go:11:") || !strings.Contains(out, "[atomicwrite]") {
		t.Errorf("unsuppressed violation missing from go vet output:\n%s", out)
	}
	if !strings.Contains(out, "suppresses nothing") || !strings.Contains(out, "[lintdirective]") {
		t.Errorf("stale directive not reported under go vet:\n%s", out)
	}
}

// TestVettoolFactsFlowAcrossUnits seeds a cross-package seedflow
// violation: the SeedParam fact earned in scratch/lib must reach the
// scratch/app compilation unit through the .vetx stamp files.
func TestVettoolFactsFlowAcrossUnits(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	bin := buildLint(t)
	dir := t.TempDir()
	writeScratchModule(t, dir, map[string]string{
		"go.mod": "module scratch\n\ngo 1.24\n",
		"internal/rng/rng.go": `package rng

type Rand struct{ s uint64 }

func New(seed uint64) *Rand { return &Rand{s: seed} }
`,
		"lib/lib.go": `package lib

import "scratch/internal/rng"

func NewStream(seed uint64) *rng.Rand { return rng.New(seed) }
`,
		"app/app.go": `package app

import (
	"os"

	"scratch/lib"
)

func FromPid() interface{} { return lib.NewStream(uint64(os.Getpid())) }
`,
	})
	out := runGoVet(t, dir, bin)
	if !strings.Contains(out, "os.Getpid in a seed argument of NewStream") || !strings.Contains(out, "[seedflow]") {
		t.Errorf("cross-package seedflow violation not caught via vetx facts:\n%s", out)
	}
}
