package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunCampaignManifestAndResume(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(manifest, []byte(`{
  "name": "cli-test",
  "seed": 3,
  "runs": 4,
  "patterns": 8,
  "platforms": ["Hera"],
  "scenarios": [1],
  "axis": "alpha",
  "values": [0.1, 0.2]
}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "run")
	stdout, err := capture(t, func() error {
		return runCampaign(context.Background(), []string{"-manifest", manifest, "-out", out})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "2 executed") || !strings.Contains(stdout, "report.txt") {
		t.Errorf("campaign output wrong:\n%s", stdout)
	}
	report, err := os.ReadFile(filepath.Join(out, "report.txt"))
	if err != nil {
		t.Fatal(err)
	}

	// Re-entering the directory requires -resume; with it, everything is
	// verified and skipped and the report is rewritten byte-identically.
	if _, err := capture(t, func() error {
		return runCampaign(context.Background(), []string{"-manifest", manifest, "-out", out})
	}); err == nil {
		t.Error("re-running without -resume succeeded")
	}
	stdout, err = capture(t, func() error {
		return runCampaign(context.Background(), []string{"-manifest", manifest, "-out", out, "-resume"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "2 skipped, 0 executed") {
		t.Errorf("resume output wrong:\n%s", stdout)
	}
	report2, err := os.ReadFile(filepath.Join(out, "report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(report) != string(report2) {
		t.Error("resumed report not byte-identical")
	}
}

func TestRunCampaignPresetAndFaults(t *testing.T) {
	dir := t.TempDir()
	faults := filepath.Join(dir, "faults.json")
	if err := os.WriteFile(faults, []byte(`{"*": {"fail_attempts": 1}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, err := capture(t, func() error {
		return runCampaign(context.Background(), []string{"-preset", "smoke",
			"-runs", "2", "-patterns", "4", "-out", filepath.Join(dir, "run"),
			"-faults", faults, "-retries", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "6 retries") {
		t.Errorf("fault plan did not drive retries:\n%s", stdout)
	}
}

func TestRunCampaignList(t *testing.T) {
	stdout, err := capture(t, func() error {
		return runCampaign(context.Background(), []string{"-list"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"smoke", "robustness", "multilevel", "sweep-alpha"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list missing preset %s:\n%s", name, stdout)
		}
	}
}

func TestRunCampaignFlagErrors(t *testing.T) {
	cases := [][]string{
		{},                                     // no manifest or preset
		{"-preset", "nonesuch", "-out", "x"},   // unknown preset
		{"-preset", "smoke"},                   // missing -out
		{"-preset", "smoke", "-manifest", "m"}, // mutually exclusive
		{"-preset", "smoke", "-out", "x", "stray"},
	}
	for _, args := range cases {
		if err := runCampaign(context.Background(), args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
