package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"amdahlyd/internal/campaign"
)

// runCampaign drives the crash-safe campaign orchestrator: a manifest
// (file or preset) expands into a deterministic cell grid, every
// completed cell is banked as an atomic artifact, and -resume finishes
// an interrupted campaign to the byte-identical aggregate report
// (DESIGN.md, "Campaign orchestrator & fault injection").
func runCampaign(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("amdahl-exp campaign", flag.ContinueOnError)
	manifestPath := fs.String("manifest", "", "campaign manifest JSON (or use -preset)")
	preset := fs.String("preset", "", "built-in manifest: one of the study presets (see -list)")
	list := fs.Bool("list", false, "list built-in presets and exit")
	outDir := fs.String("out", "", "campaign directory (manifest, journal, cell artifacts, report)")
	resume := fs.Bool("resume", false, "resume an interrupted campaign: verify banked cells by checksum, run only the rest")
	seed := fs.Uint64("seed", 0, "override the manifest's master seed")
	runs := fs.Int("runs", 0, "override Monte-Carlo runs per cell")
	patterns := fs.Int("patterns", 0, "override patterns per run")
	quick := fs.Bool("quick", false, "reduced Monte-Carlo budget (40×60 per cell)")
	workers := fs.Int("workers", 0, "chain-level parallelism (default GOMAXPROCS; never changes results)")
	retries := fs.Int("retries", 0, "attempts per cell before a permanent failure (default 3)")
	timeout := fs.Duration("timeout", 0, "per-attempt cell timeout (0 = none); a deadline hit retries")
	budget := fs.Int("budget", 0, "permanent cell failures tolerated before the campaign aborts fast")
	faultsPath := fs.String("faults", "", "fault-injection plan JSON (testing: fail/panic/delay named cells)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if *list {
		for _, name := range campaign.PresetNames() {
			fmt.Println(name)
		}
		return nil
	}

	var man campaign.Manifest
	switch {
	case *manifestPath != "" && *preset != "":
		return fmt.Errorf("-manifest and -preset are mutually exclusive")
	case *manifestPath != "":
		f, err := os.Open(*manifestPath)
		if err != nil {
			return err
		}
		man, err = campaign.ReadManifest(f)
		f.Close()
		if err != nil {
			return err
		}
	case *preset != "":
		var err error
		man, err = campaign.Preset(*preset)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("one of -manifest or -preset is required (or -list)")
	}
	if *outDir == "" {
		return fmt.Errorf("-out is required")
	}
	// Budget overrides rewrite the manifest before it is pinned to the
	// output directory, so a resume must repeat them — the directory
	// never silently mixes budgets.
	if *quick {
		man.Runs, man.Patterns = 40, 60
	}
	if *seed != 0 {
		man.Seed = *seed
	}
	if *runs != 0 {
		man.Runs = *runs
	}
	if *patterns != 0 {
		man.Patterns = *patterns
	}

	var faults campaign.FaultPlan
	if *faultsPath != "" {
		f, err := os.Open(*faultsPath)
		if err != nil {
			return err
		}
		faults, err = campaign.ReadFaultPlan(f)
		f.Close()
		if err != nil {
			return err
		}
	}

	//lint:allow walltime CLI progress timing printed to the operator; artifacts carry no wall-clock
	start := time.Now()
	sum, err := campaign.Run(ctx, man, campaign.Options{
		OutDir:        *outDir,
		Resume:        *resume,
		Workers:       *workers,
		MaxAttempts:   *retries,
		CellTimeout:   *timeout,
		FailureBudget: *budget,
		Faults:        faults,
	})
	//lint:allow walltime CLI progress timing printed to the operator; artifacts carry no wall-clock
	elapsed := time.Since(start)
	fmt.Printf("campaign %s: %d cells planned, %d skipped, %d executed, %d retries, %d failed (%.1fs)\n",
		man.Name, sum.Planned, sum.Skipped, sum.Executed, sum.Retries, sum.Failed,
		elapsed.Seconds())
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s\nwrote %s\n", sum.ReportText, sum.ReportCSV)
	return nil
}
