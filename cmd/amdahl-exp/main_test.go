package main

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), errRun
}

func TestRunFig2Quick(t *testing.T) {
	out, err := capture(t, func() error {
		return run(context.Background(), []string{"-fig", "2", "-quick", "-platform", "hera",
			"-runs", "10", "-patterns", "20"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Fig. 2", "Hera", "scenario 6"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q", frag)
		}
	}
}

func TestRunFig5PrintsSlopes(t *testing.T) {
	out, err := capture(t, func() error {
		return run(context.Background(), []string{"-fig", "5", "-quick", "-runs", "10", "-patterns", "20"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "log-log slopes") {
		t.Errorf("Fig. 5 should report slopes:\n%s", out)
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	_, err := capture(t, func() error {
		return run(context.Background(), []string{"-fig", "7", "-quick", "-out", dir,
			"-runs", "10", "-patterns", "20"})
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig7.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "pstar/scenario 1 (optimal)") {
		t.Error("CSV content missing expected series")
	}
}

func TestRunProfilesExtension(t *testing.T) {
	out, err := capture(t, func() error {
		return run(context.Background(), []string{"-fig", "profiles", "-quick", "-runs", "10", "-patterns", "20"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Profile study") || !strings.Contains(out, "gustafson") {
		t.Errorf("profile study output wrong:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), []string{"-fig", "99"}); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run(context.Background(), []string{"-platform", "unknown"}); err == nil {
		t.Error("unknown platform accepted")
	}
}

func TestRunRobustnessQuick(t *testing.T) {
	dir := t.TempDir()
	out, err := capture(t, func() error {
		return runRobustness(context.Background(), []string{"-dist", "weibull", "-shape", "0.7",
			"-scenario", "1", "-quick", "-runs", "10", "-patterns", "20",
			"-out", dir})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Robustness study", "weibull", "scenario 1", "gap"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "robustness.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "overhead_sim_retuned") {
		t.Error("robustness CSV missing retuned series")
	}
}

func TestRunRobustnessRejectsBadFlags(t *testing.T) {
	if err := runRobustness(context.Background(), []string{"-dist", "cauchy"}); err == nil {
		t.Error("unknown distribution accepted")
	}
	if err := runRobustness(context.Background(), []string{"-scenario", "9"}); err == nil {
		t.Error("scenario 9 accepted")
	}
	if err := runRobustness(context.Background(), []string{"-platform", "nonesuch"}); err == nil {
		t.Error("unknown platform accepted")
	}
}

func TestRunRobustnessExponentialRejectsShape(t *testing.T) {
	if err := runRobustness(context.Background(), []string{"-dist", "exponential", "-shape", "0.3"}); err == nil {
		t.Error("-shape with -dist exponential accepted")
	}
}

func TestRunRejectsStrayPositional(t *testing.T) {
	if err := run(context.Background(), []string{"robustnes", "-quick"}); err == nil {
		t.Error("misspelled subcommand fell through to the figure suite")
	}
	if err := runRobustness(context.Background(), []string{"extra"}); err == nil {
		t.Error("stray positional accepted by robustness")
	}
}

func TestRunRobustnessLognormalNeedsShape(t *testing.T) {
	if err := runRobustness(context.Background(), []string{"-dist", "lognormal", "-quick"}); err == nil {
		t.Error("lognormal without explicit -shape accepted")
	}
}

func TestRunMultilevelQuick(t *testing.T) {
	dir := t.TempDir()
	out, err := capture(t, func() error {
		return runMultilevel(context.Background(), []string{"-quick", "-runs", "10", "-patterns", "20",
			"-scenario", "3", "-frac", "0.0667,0.2", "-out", dir})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Multilevel study", "Hera", "K*", "saving"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "multilevel.csv")); err != nil {
		t.Errorf("CSV not written: %v", err)
	}
}

// The -warm flag is the render-level acceptance pin at the CLI surface:
// for a fixed seed the two modes must print byte-identical tables.
func TestRunMultilevelWarmColdByteIdentical(t *testing.T) {
	run := func(warm string) string {
		out, err := capture(t, func() error {
			return runMultilevel(context.Background(), []string{"-quick", "-runs", "10",
				"-patterns", "20", "-seed", "5", "-warm=" + warm})
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if w, c := run("true"), run("false"); w != c {
		t.Errorf("warm and cold CLI renders differ:\n--- warm ---\n%s\n--- cold ---\n%s", w, c)
	}
}

func TestRunMultilevelRejectsBadFlags(t *testing.T) {
	if _, err := capture(t, func() error {
		return runMultilevel(context.Background(), []string{"-scenario", "9"})
	}); err == nil {
		t.Error("scenario 9 accepted")
	}
	if _, err := capture(t, func() error {
		return runMultilevel(context.Background(), []string{"-frac", "0.1,bogus"})
	}); err == nil {
		t.Error("malformed -frac accepted")
	}
	if _, err := capture(t, func() error {
		return runMultilevel(context.Background(), []string{"stray"})
	}); err == nil {
		t.Error("stray positional accepted")
	}
}
