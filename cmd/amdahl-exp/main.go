// Command amdahl-exp regenerates the paper's evaluation figures
// (Figs. 2–7 of Section IV) as text tables and CSV series, plus the
// extension studies.
//
// Usage:
//
//	amdahl-exp -fig 2                  # Fig. 2 on all four platforms
//	amdahl-exp -fig 5 -quick           # reduced Monte-Carlo budget
//	amdahl-exp -fig all -out results/  # everything, with CSV files
//	amdahl-exp -fig 4 -warm=false      # per-cell grid scans (no warm-start)
//
// Sweep cells are solved by a warm-start chain per scenario (see
// DESIGN.md, "Warm-start sweep solver"); -warm=false restores the
// historical per-cell grid scans, bit-identical to releases before the
// batch solver. Rendered outputs are byte-identical either way for a
// fixed seed.
//
// The robustness subcommand stresses the exponential-optimal patterns
// against non-memoryless failure laws (Weibull, log-normal, Gamma),
// re-tuning the period under the true distribution and reporting the
// overhead gap per Table III scenario:
//
//	amdahl-exp robustness -dist weibull -shape 0.7
//	amdahl-exp robustness -dist weibull -quick   # sweep k in [0.5, 1]
//
// The multilevel subcommand runs the two-level resilience study: the
// joint (T, K, P) optimum per scenario × in-memory cost fraction, priced
// by Monte-Carlo against the single-level optimum (DESIGN.md,
// "Multilevel end-to-end"):
//
//	amdahl-exp multilevel -quick
//	amdahl-exp multilevel -scenario 3 -frac 0.0667,0.2
//
// The hetero subcommand runs the heterogeneous-platform study: a CPU
// platform plus a derived accelerator group (8× faster, 50× less
// reliable), jointly optimized over active groups, work split and
// per-group patterns, swept over the inter-group comm term and the
// accelerator size (DESIGN.md, "Heterogeneous topologies"):
//
//	amdahl-exp hetero -quick
//	amdahl-exp hetero -scenario 1 -comm 0,1e-5 -split 0.25
//
// The campaign subcommand is the crash-safe grid orchestrator: a
// declarative manifest (or a built-in preset mirroring the five studies)
// expands into a deterministic cell grid, every completed cell is banked
// as an atomic checksummed artifact, and -resume finishes an interrupted
// campaign — SIGKILL included — to the byte-identical aggregate report:
//
//	amdahl-exp campaign -preset smoke -out runs/smoke
//	amdahl-exp campaign -manifest grid.json -out runs/grid
//	amdahl-exp campaign -manifest grid.json -out runs/grid -resume
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"amdahlyd/internal/atomicio"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/experiments"
	"amdahlyd/internal/failures"
	"amdahlyd/internal/platform"
)

func main() {
	// An interrupt aborts in-flight Monte-Carlo campaigns via the context
	// threaded through the experiment drivers, instead of leaving a
	// full-budget figure suite running to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	args := os.Args[1:]
	var err error
	switch {
	case len(args) > 0 && args[0] == "robustness":
		err = runRobustness(ctx, args[1:])
	case len(args) > 0 && args[0] == "multilevel":
		err = runMultilevel(ctx, args[1:])
	case len(args) > 0 && args[0] == "hetero":
		err = runHetero(ctx, args[1:])
	case len(args) > 0 && args[0] == "campaign":
		err = runCampaign(ctx, args[1:])
	default:
		err = run(ctx, args)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "amdahl-exp:", err)
		os.Exit(1)
	}
}

// buildConfig assembles the Monte-Carlo budget shared by every
// subcommand: -quick selects the reduced preset, -runs/-patterns
// override either axis.
func buildConfig(quick bool, seed uint64, runs, patterns int) experiments.Config {
	cfg := experiments.Config{Seed: seed}
	if quick {
		cfg = experiments.Quick()
		cfg.Seed = seed
	}
	if runs > 0 {
		cfg.Runs = runs
	}
	if patterns > 0 {
		cfg.Patterns = patterns
	}
	return cfg
}

// runRobustness drives the non-exponential robustness study (extension
// beyond the paper; see DESIGN.md, distribution substrate).
func runRobustness(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("amdahl-exp robustness", flag.ContinueOnError)
	platName := fs.String("platform", "hera", "platform supplying rates and costs")
	dist := fs.String("dist", "weibull", "true failure law: weibull, lognormal or gamma (exponential = sanity baseline)")
	shape := fs.Float64("shape", 0, "distribution shape (Weibull/Gamma k, log-normal σ); 0 sweeps the default Weibull range [0.5, 1]")
	scenario := fs.Int("scenario", 0, "restrict to one Table III scenario 1-6 (0 = all)")
	quick := fs.Bool("quick", false, "reduced Monte-Carlo budget (~100× faster)")
	outDir := fs.String("out", "", "directory for CSV output (optional)")
	seed := fs.Uint64("seed", 1, "random seed")
	runs := fs.Int("runs", 0, "override Monte-Carlo runs per point")
	patterns := fs.Int("patterns", 0, "override patterns per run")
	warm := fs.Bool("warm", true, "warm-start the per-scenario optimizations; -warm=false restores the per-cell grid scans")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	pl, err := platform.Lookup(*platName)
	if err != nil {
		return err
	}
	cfg := buildConfig(*quick, *seed, *runs, *patterns)
	cfg.ColdSolve = !*warm
	shapes := experiments.DefaultRobustnessShapes
	switch {
	case failures.IsExponentialName(*dist):
		// The exponential law has no shape parameter: a single cell per
		// scenario (sweeping the default range would price identical
		// cells six times over), and an explicit -shape would silently
		// misstate the law that was priced.
		if *shape != 0 {
			return fmt.Errorf("-shape has no effect with -dist exponential")
		}
		shapes = []float64{1}
	case *shape != 0:
		shapes = []float64{*shape}
	case *dist == "lognormal":
		// The default sweep is the Weibull/Gamma shape range, where
		// shape 1 is the memoryless baseline; LogNormal(σ=1) is not, so
		// a σ sweep must be an explicit choice.
		return fmt.Errorf("-dist lognormal needs an explicit -shape (σ)")
	}
	var scenarios []costmodel.Scenario
	if *scenario != 0 {
		sc := costmodel.Scenario(*scenario)
		if !sc.Valid() {
			return fmt.Errorf("scenario %d outside 1-6", *scenario)
		}
		scenarios = []costmodel.Scenario{sc}
	}
	res, err := experiments.RobustnessStudyContext(ctx, pl, *dist, shapes, scenarios, cfg)
	if err != nil {
		return err
	}
	if err := res.Render(os.Stdout); err != nil {
		return err
	}
	if *outDir != "" {
		return writeCSV(*outDir, "robustness", res)
	}
	return nil
}

// runMultilevel drives the two-level resilience study (extension beyond
// the paper, Section V future work; see DESIGN.md, "Multilevel
// end-to-end"): the joint (T, K, P) optimum per scenario × in-memory
// cost fraction, priced by Monte-Carlo against the single-level optimum.
func runMultilevel(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("amdahl-exp multilevel", flag.ContinueOnError)
	platName := fs.String("platform", "hera", "platform supplying rates and costs")
	fracs := fs.String("frac", "", "comma-separated in-memory cost fractions C1/C2 (default 1/60,1/15,0.2,0.5,1)")
	scenario := fs.Int("scenario", 0, "restrict to one Table III scenario 1-6 (0 = scenarios 1,3,5)")
	quick := fs.Bool("quick", false, "reduced Monte-Carlo budget (~100× faster)")
	outDir := fs.String("out", "", "directory for CSV output (optional)")
	seed := fs.Uint64("seed", 1, "random seed")
	runs := fs.Int("runs", 0, "override Monte-Carlo runs per point")
	patterns := fs.Int("patterns", 0, "override patterns per run")
	warm := fs.Bool("warm", true, "warm-start the per-scenario (T, K, P) chains; -warm=false restores per-cell full-box scans")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	pl, err := platform.Lookup(*platName)
	if err != nil {
		return err
	}
	cfg := buildConfig(*quick, *seed, *runs, *patterns)
	cfg.ColdSolve = !*warm
	var fracList []float64
	if *fracs != "" {
		for _, s := range strings.Split(*fracs, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return fmt.Errorf("bad fraction %q: %w", s, err)
			}
			fracList = append(fracList, f)
		}
	}
	var scenarios []costmodel.Scenario
	if *scenario != 0 {
		sc := costmodel.Scenario(*scenario)
		if !sc.Valid() {
			return fmt.Errorf("scenario %d outside 1-6", *scenario)
		}
		scenarios = []costmodel.Scenario{sc}
	}
	res, err := experiments.MultilevelStudyContext(ctx, pl, fracList, scenarios, cfg)
	if err != nil {
		return err
	}
	if err := res.Render(os.Stdout); err != nil {
		return err
	}
	if *outDir != "" {
		return writeCSV(*outDir, "multilevel", res)
	}
	return nil
}

// runHetero drives the heterogeneous-platform study (extension beyond
// the paper; see DESIGN.md, "Heterogeneous topologies"): the joint
// optimum over active groups, work split and per-group patterns for a
// CPU platform plus a derived accelerator group, swept over the
// inter-group comm term and the accelerator size, priced by Monte-Carlo
// against the CPU-only optimum.
func runHetero(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("amdahl-exp hetero", flag.ContinueOnError)
	platName := fs.String("platform", "hera", "CPU platform supplying rates and costs (the accelerator group is derived from it)")
	comms := fs.String("comm", "", "comma-separated inter-group comm coefficients κ (default 0,1e-6,3e-6,1e-5,3e-5,1e-4)")
	splits := fs.String("split", "", "comma-separated accelerator sizes as fractions of the CPU size (default 0.0625,0.25,1)")
	scenario := fs.Int("scenario", 0, "restrict to one Table III scenario 1-6 (0 = scenarios 1,3,5)")
	quick := fs.Bool("quick", false, "reduced Monte-Carlo budget (~100× faster)")
	outDir := fs.String("out", "", "directory for CSV output (optional)")
	seed := fs.Uint64("seed", 1, "random seed")
	runs := fs.Int("runs", 0, "override Monte-Carlo runs per point")
	patterns := fs.Int("patterns", 0, "override patterns per run")
	warm := fs.Bool("warm", true, "warm-start the per-(scenario, split) chains along the comm axis; -warm=false restores per-cell full-box scans")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	pl, err := platform.Lookup(*platName)
	if err != nil {
		return err
	}
	cfg := buildConfig(*quick, *seed, *runs, *patterns)
	cfg.ColdSolve = !*warm
	commList, err := parseFloats(*comms)
	if err != nil {
		return fmt.Errorf("-comm: %w", err)
	}
	splitList, err := parseFloats(*splits)
	if err != nil {
		return fmt.Errorf("-split: %w", err)
	}
	var scenarios []costmodel.Scenario
	if *scenario != 0 {
		sc := costmodel.Scenario(*scenario)
		if !sc.Valid() {
			return fmt.Errorf("scenario %d outside 1-6", *scenario)
		}
		scenarios = []costmodel.Scenario{sc}
	}
	res, err := experiments.HeterogeneousStudyContext(ctx, pl, commList, splitList, scenarios, cfg)
	if err != nil {
		return err
	}
	if err := res.Render(os.Stdout); err != nil {
		return err
	}
	if *outDir != "" {
		return writeCSV(*outDir, "hetero", res)
	}
	return nil
}

// parseFloats parses a comma-separated list of floats ("" = nil, which
// selects a study's default axis).
func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", part, err)
		}
		out = append(out, f)
	}
	return out, nil
}

// renderable is the common surface of every figure result.
type renderable interface {
	Render(w io.Writer) error
	WriteCSV(w io.Writer) error
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("amdahl-exp", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure to regenerate: 2, 3, 4, 5, 6, 7 or all")
	platName := fs.String("platform", "", "platform for Figs. 3-7 (default hera) or Fig. 2 (default all)")
	quick := fs.Bool("quick", false, "reduced Monte-Carlo budget (~100× faster)")
	outDir := fs.String("out", "", "directory for CSV output (optional)")
	seed := fs.Uint64("seed", 1, "random seed")
	runs := fs.Int("runs", 0, "override Monte-Carlo runs per point")
	patterns := fs.Int("patterns", 0, "override patterns per run")
	warm := fs.Bool("warm", true, "warm-start sweep cells from the neighbouring optimum; -warm=false restores the per-cell grid scans")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		// A misspelled subcommand ("robustnes") or a misplaced positional
		// must not silently launch the full-budget figure suite.
		return fmt.Errorf("unexpected argument %q (subcommands: robustness)", fs.Arg(0))
	}

	cfg := buildConfig(*quick, *seed, *runs, *patterns)
	cfg.ColdSolve = !*warm

	sweepPlatform := platform.Hera()
	fig2Platforms := platform.All()
	if *platName != "" {
		pl, err := platform.Lookup(*platName)
		if err != nil {
			return err
		}
		sweepPlatform = pl
		fig2Platforms = []platform.Platform{pl}
	}

	figures := strings.Split(*fig, ",")
	if *fig == "all" {
		figures = []string{"2", "3", "4", "5", "6", "7", "profiles", "baselines"}
	}

	for _, f := range figures {
		var (
			res  renderable
			err  error
			name = "fig" + f
		)
		switch strings.TrimSpace(f) {
		case "2":
			res, err = experiments.Fig2Context(ctx, fig2Platforms, cfg)
		case "3":
			res, err = experiments.Fig3Context(ctx, sweepPlatform, nil, cfg)
		case "4":
			res, err = experiments.Fig4Context(ctx, sweepPlatform, nil, cfg)
		case "5":
			res, err = experiments.Fig5Context(ctx, sweepPlatform, nil, cfg)
		case "6":
			res, err = experiments.Fig6Context(ctx, sweepPlatform, nil, cfg)
		case "7":
			res, err = experiments.Fig7Context(ctx, sweepPlatform, nil, cfg)
		case "profiles":
			// Extension beyond the paper: speedup profiles other than
			// Amdahl's law (Section V future work).
			res, err = experiments.ProfileStudyContext(ctx, sweepPlatform, costmodel.Scenario1, nil, cfg)
		case "baselines":
			// The intro's motivation quantified: fail-stop-only
			// Young/Daly tuning vs the VC-aware optimum, all platforms.
			res, err = experiments.BaselineStudyContext(ctx, fig2Platforms, costmodel.Scenario1, cfg)
		default:
			return fmt.Errorf("unknown figure %q (want 2-7, profiles, baselines, or all)", f)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := res.Render(os.Stdout); err != nil {
			return err
		}
		if sw, ok := res.(*experiments.SweepResult); ok && (f == "5" || f == "6") {
			printSlopes(sw)
		}
		if *outDir != "" {
			if err := writeCSV(*outDir, name, res); err != nil {
				return err
			}
		}
	}
	return nil
}

func printSlopes(sw *experiments.SweepResult) {
	fmt.Println("log-log slopes of the numerical optimum vs λ_ind:")
	slopes := sw.Slopes()
	scs := make([]costmodel.Scenario, 0, len(slopes))
	for sc := range slopes {
		scs = append(scs, sc)
	}
	sort.Slice(scs, func(i, j int) bool { return scs[i] < scs[j] })
	for _, sc := range scs {
		s := slopes[sc]
		fmt.Printf("  %v: P* slope %+.3f, T* slope %+.3f, H slope %+.3f\n",
			sc, s.P, s.T, s.H)
	}
	fmt.Println()
}

func writeCSV(dir, name string, res renderable) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name+".csv")
	// Temp-and-rename: an interrupt mid-write leaves the previous CSV
	// intact instead of a truncated file a downstream plot would trust.
	if err := atomicio.WriteFile(path, res.WriteCSV); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n\n", path)
	return nil
}
