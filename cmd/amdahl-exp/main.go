// Command amdahl-exp regenerates the paper's evaluation figures
// (Figs. 2–7 of Section IV) as text tables and CSV series.
//
// Usage:
//
//	amdahl-exp -fig 2                  # Fig. 2 on all four platforms
//	amdahl-exp -fig 5 -quick           # reduced Monte-Carlo budget
//	amdahl-exp -fig all -out results/  # everything, with CSV files
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/experiments"
	"amdahlyd/internal/platform"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "amdahl-exp:", err)
		os.Exit(1)
	}
}

// renderable is the common surface of every figure result.
type renderable interface {
	Render(w io.Writer) error
	WriteCSV(w io.Writer) error
}

func run(args []string) error {
	fs := flag.NewFlagSet("amdahl-exp", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure to regenerate: 2, 3, 4, 5, 6, 7 or all")
	platName := fs.String("platform", "", "platform for Figs. 3-7 (default hera) or Fig. 2 (default all)")
	quick := fs.Bool("quick", false, "reduced Monte-Carlo budget (~100× faster)")
	outDir := fs.String("out", "", "directory for CSV output (optional)")
	seed := fs.Uint64("seed", 1, "random seed")
	runs := fs.Int("runs", 0, "override Monte-Carlo runs per point")
	patterns := fs.Int("patterns", 0, "override patterns per run")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.Config{Seed: *seed}
	if *quick {
		cfg = experiments.Quick()
		cfg.Seed = *seed
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *patterns > 0 {
		cfg.Patterns = *patterns
	}

	sweepPlatform := platform.Hera()
	fig2Platforms := platform.All()
	if *platName != "" {
		pl, err := platform.Lookup(*platName)
		if err != nil {
			return err
		}
		sweepPlatform = pl
		fig2Platforms = []platform.Platform{pl}
	}

	figures := strings.Split(*fig, ",")
	if *fig == "all" {
		figures = []string{"2", "3", "4", "5", "6", "7", "profiles", "baselines"}
	}

	for _, f := range figures {
		var (
			res  renderable
			err  error
			name = "fig" + f
		)
		switch strings.TrimSpace(f) {
		case "2":
			res, err = experiments.Fig2(fig2Platforms, cfg)
		case "3":
			res, err = experiments.Fig3(sweepPlatform, nil, cfg)
		case "4":
			res, err = experiments.Fig4(sweepPlatform, nil, cfg)
		case "5":
			res, err = experiments.Fig5(sweepPlatform, nil, cfg)
		case "6":
			res, err = experiments.Fig6(sweepPlatform, nil, cfg)
		case "7":
			res, err = experiments.Fig7(sweepPlatform, nil, cfg)
		case "profiles":
			// Extension beyond the paper: speedup profiles other than
			// Amdahl's law (Section V future work).
			res, err = experiments.ProfileStudy(sweepPlatform, costmodel.Scenario1, nil, cfg)
		case "baselines":
			// The intro's motivation quantified: fail-stop-only
			// Young/Daly tuning vs the VC-aware optimum, all platforms.
			res, err = experiments.BaselineStudy(fig2Platforms, costmodel.Scenario1, cfg)
		default:
			return fmt.Errorf("unknown figure %q (want 2-7, profiles, baselines, or all)", f)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := res.Render(os.Stdout); err != nil {
			return err
		}
		if sw, ok := res.(*experiments.SweepResult); ok && (f == "5" || f == "6") {
			printSlopes(sw)
		}
		if *outDir != "" {
			if err := writeCSV(*outDir, name, res); err != nil {
				return err
			}
		}
	}
	return nil
}

func printSlopes(sw *experiments.SweepResult) {
	fmt.Println("log-log slopes of the numerical optimum vs λ_ind:")
	slopes := sw.Slopes()
	for sc, s := range slopes {
		fmt.Printf("  %v: P* slope %+.3f, T* slope %+.3f, H slope %+.3f\n",
			sc, s.P, s.T, s.H)
	}
	fmt.Println()
}

func writeCSV(dir, name string, res renderable) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := res.WriteCSV(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n\n", path)
	return f.Close()
}
