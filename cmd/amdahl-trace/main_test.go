package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), errRun
}

// genTestTrace writes a small trace file and returns its path.
func genTestTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.csv")
	err := runGen([]string{"-platform", "hera", "-procs", "256",
		"-horizon", "5e6", "-seed", "3", "-out", path})
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGenStatReplayPipeline(t *testing.T) {
	path := genTestTrace(t)

	out, err := capture(t, func() error {
		return runStat([]string{"-in", path, "-rate", "4.3264e-6"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"events:", "inter-arrival", "KS test", "consistent with"} {
		if !strings.Contains(out, frag) {
			t.Errorf("stat output missing %q:\n%s", frag, out)
		}
	}

	out, err = capture(t, func() error {
		return runReplay([]string{"-in", path, "-platform", "hera",
			"-scenario", "1", "-P", "256"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"replayed", "mean pattern time", "execution overhead"} {
		if !strings.Contains(out, frag) {
			t.Errorf("replay output missing %q:\n%s", frag, out)
		}
	}
}

func TestStatRejectsWrongRate(t *testing.T) {
	path := genTestTrace(t)
	out, err := capture(t, func() error {
		// 5× the true platform rate: KS must reject.
		return runStat([]string{"-in", path, "-rate", "2.2e-5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "REJECTED") {
		t.Errorf("KS should reject a 5× wrong rate:\n%s", out)
	}
}

func TestSubcommandErrors(t *testing.T) {
	if err := runGen([]string{"-platform", "unknown"}); err == nil {
		t.Error("unknown platform accepted")
	}
	if err := runGen([]string{"-horizon", "-5"}); err == nil {
		t.Error("negative horizon accepted")
	}
	if err := runStat([]string{}); err == nil {
		t.Error("missing -in accepted")
	}
	if err := runStat([]string{"-in", "/nonexistent/file.csv"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := runReplay([]string{}); err == nil {
		t.Error("missing -in accepted")
	}
	if err := runReplay([]string{"-in", "/nonexistent.csv", "-scenario", "7"}); err == nil {
		t.Error("bad scenario accepted")
	}
}
