package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), errRun
}

// genTestTrace writes a small trace file and returns its path.
func genTestTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.csv")
	err := runGen([]string{"-platform", "hera", "-procs", "256",
		"-horizon", "5e6", "-seed", "3", "-out", path})
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGenStatReplayPipeline(t *testing.T) {
	path := genTestTrace(t)

	out, err := capture(t, func() error {
		return runStat([]string{"-in", path, "-rate", "4.3264e-6"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"events:", "inter-arrival", "KS test", "consistent with"} {
		if !strings.Contains(out, frag) {
			t.Errorf("stat output missing %q:\n%s", frag, out)
		}
	}

	out, err = capture(t, func() error {
		return runReplay([]string{"-in", path, "-platform", "hera",
			"-scenario", "1", "-P", "256"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"replayed", "mean pattern time", "execution overhead"} {
		if !strings.Contains(out, frag) {
			t.Errorf("replay output missing %q:\n%s", frag, out)
		}
	}
}

func TestStatRejectsWrongRate(t *testing.T) {
	path := genTestTrace(t)
	out, err := capture(t, func() error {
		// 5× the true platform rate: KS must reject.
		return runStat([]string{"-in", path, "-rate", "2.2e-5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "REJECTED") {
		t.Errorf("KS should reject a 5× wrong rate:\n%s", out)
	}
}

func TestSubcommandErrors(t *testing.T) {
	if err := runGen([]string{"-platform", "unknown"}); err == nil {
		t.Error("unknown platform accepted")
	}
	if err := runGen([]string{"-horizon", "-5"}); err == nil {
		t.Error("negative horizon accepted")
	}
	if err := runStat([]string{}); err == nil {
		t.Error("missing -in accepted")
	}
	if err := runStat([]string{"-in", "/nonexistent/file.csv"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := runReplay([]string{}); err == nil {
		t.Error("missing -in accepted")
	}
	if err := runReplay([]string{"-in", "/nonexistent.csv", "-scenario", "7"}); err == nil {
		t.Error("bad scenario accepted")
	}
}

func TestGenDistWeibullPipeline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "weibull.csv")
	err := runGen([]string{"-platform", "hera", "-procs", "64",
		"-horizon", "3e9", "-seed", "5", "-dist", "weibull", "-shape", "0.7",
		"-out", path})
	if err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return runStat([]string{"-in", path, "-dist", "weibull", "-shape", "0.7",
			"-lambda", "1.69e-8"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"KS test (per-proc)", "consistent with", "weibull"} {
		if !strings.Contains(out, frag) {
			t.Errorf("stat output missing %q:\n%s", frag, out)
		}
	}
	// The wrong shape must be detected.
	out, err = capture(t, func() error {
		return runStat([]string{"-in", path, "-dist", "weibull", "-shape", "0.4",
			"-lambda", "1.69e-8"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "REJECTED") {
		t.Errorf("mis-shaped KS not rejected:\n%s", out)
	}
}

func TestGenDistRejectsUnknown(t *testing.T) {
	if err := runGen([]string{"-dist", "cauchy", "-shape", "1"}); err == nil {
		t.Error("unknown distribution accepted")
	}
}

func TestStatDistNeedsLambda(t *testing.T) {
	path := genTestTrace(t)
	if err := runStat([]string{"-in", path, "-dist", "weibull", "-shape", "0.7"}); err == nil {
		t.Error("-dist without -lambda accepted")
	}
}

// The default gen path must keep producing byte-identical traces for a
// fixed seed (the horizon header is new, but events must not move).
func TestGenDefaultStillExponential(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.csv")
	b := filepath.Join(dir, "b.csv")
	if err := runGen([]string{"-procs", "32", "-horizon", "1e9", "-seed", "7", "-out", a}); err != nil {
		t.Fatal(err)
	}
	if err := runGen([]string{"-procs", "32", "-horizon", "1e9", "-seed", "7",
		"-dist", "exponential", "-out", b}); err != nil {
		t.Fatal(err)
	}
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(da) != string(db) {
		t.Error("explicit -dist exponential differs from the default path")
	}
}

func TestShapeFlagPairing(t *testing.T) {
	if err := runGen([]string{"-dist", "exponential", "-shape", "0.5"}); err == nil {
		t.Error("gen: -shape with exponential accepted")
	}
	if err := runGen([]string{"-dist", "weibull"}); err == nil {
		t.Error("gen: weibull without -shape accepted")
	}
	path := genTestTrace(t)
	if err := runStat([]string{"-in", path, "-dist", "gamma", "-lambda", "1e-8"}); err == nil {
		t.Error("stat: gamma without -shape accepted")
	}
}

func TestStatShapeWithoutDistRejected(t *testing.T) {
	path := genTestTrace(t)
	if err := runStat([]string{"-in", path, "-shape", "0.7", "-lambda", "1e-8"}); err == nil {
		t.Error("stat: -shape/-lambda without -dist accepted")
	}
}
