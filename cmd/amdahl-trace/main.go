// Command amdahl-trace generates, inspects and replays failure traces.
//
// Traces are CSV files of (time, kind, proc) rows in exposure time —
// the format a real machine log can be converted into — preceded by a
// "# horizon=" header that keeps the trace length across round trips.
// Synthetic traces use a platform's published rates (the distributional
// assumption of the paper's simulator; see DESIGN.md, substitutions);
// -dist generalizes the per-processor inter-arrival law to the Weibull,
// log-normal and Gamma renewal processes observed in real platform logs,
// calibrated to the platform MTBF.
//
// Usage:
//
//	amdahl-trace gen -platform hera -procs 512 -horizon 1e7 -out trace.csv
//	amdahl-trace gen -platform hera -dist weibull -shape 0.7 -out trace.csv
//	amdahl-trace stat -in trace.csv
//	amdahl-trace stat -in trace.csv -dist weibull -shape 0.7 -lambda 1.69e-8
//	amdahl-trace replay -in trace.csv -platform hera -scenario 1 -T 6240 -P 219
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"amdahlyd/internal/atomicio"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/experiments"
	"amdahlyd/internal/failures"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/rng"
	"amdahlyd/internal/sim"
	"amdahlyd/internal/stats"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "amdahl-trace: need a subcommand: gen, stat or replay")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = runGen(os.Args[2:])
	case "stat":
		err = runStat(os.Args[2:])
	case "replay":
		err = runReplay(os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q (want gen, stat or replay)", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "amdahl-trace:", err)
		os.Exit(1)
	}
}

// checkShapeFlag enforces the -dist/-shape pairing: the exponential law
// has no shape parameter (a supplied one would silently misstate the
// sampled law), and every other law needs one explicitly.
func checkShapeFlag(dist string, shape float64) error {
	exponential := failures.IsExponentialName(dist)
	if exponential && shape != 0 {
		return fmt.Errorf("-shape has no effect with -dist exponential")
	}
	if !exponential && shape == 0 {
		return fmt.Errorf("-dist %s needs an explicit -shape", dist)
	}
	return nil
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("amdahl-trace gen", flag.ContinueOnError)
	platName := fs.String("platform", "hera", "platform supplying λ_ind and f")
	procs := fs.Int("procs", 512, "number of processors")
	horizon := fs.Float64("horizon", 1e7, "trace length in exposure seconds")
	seed := fs.Uint64("seed", 1, "random seed")
	dist := fs.String("dist", "exponential", "inter-arrival law: exponential, weibull, lognormal or gamma (MTBF-calibrated)")
	shape := fs.Float64("shape", 0, "distribution shape (Weibull/Gamma k, log-normal σ); required for non-exponential laws")
	out := fs.String("out", "", "output CSV path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := checkShapeFlag(*dist, *shape); err != nil {
		return err
	}
	pl, err := platform.Lookup(*platName)
	if err != nil {
		return err
	}
	// ParseDistribution carries the exponential rate through verbatim, so
	// the default path stays bit-identical to the historical generator.
	d, err := failures.ParseDistribution(*dist, *shape, pl.LambdaInd)
	if err != nil {
		return err
	}
	tr, err := failures.GenerateTraceDist(d, pl.FailStopFraction, *procs, *horizon, rng.New(*seed))
	if err != nil {
		return err
	}
	if *out != "" {
		// Temp-and-rename: a kill mid-write leaves the previous trace
		// intact instead of a truncated CSV a later run would trust.
		if err := atomicio.WriteFile(*out, func(w io.Writer) error {
			return tr.WriteCSV(w)
		}); err != nil {
			return err
		}
	} else if err := tr.WriteCSV(os.Stdout); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %d events (%d fail-stop, %d silent) over %.3g s on %d procs\n",
		len(tr.Events), tr.Count(failures.FailStop), tr.Count(failures.Silent),
		*horizon, *procs)
	return nil
}

func runStat(args []string) error {
	fs := flag.NewFlagSet("amdahl-trace stat", flag.ContinueOnError)
	in := fs.String("in", "", "input CSV path (required)")
	rate := fs.Float64("rate", 0, "expected platform rate P·λ_ind for a merged-stream KS test (exponential traces only)")
	dist := fs.String("dist", "", "per-processor law for a goodness-of-fit KS test (weibull, lognormal, gamma, exponential)")
	shape := fs.Float64("shape", 0, "shape for -dist (Weibull/Gamma k, log-normal σ); required for non-exponential laws")
	lambda := fs.Float64("lambda", 0, "per-processor rate λ_ind for -dist (required with -dist)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dist != "" {
		if err := checkShapeFlag(*dist, *shape); err != nil {
			return err
		}
		if !(*lambda > 0) {
			// Fail fast, before any statistics are printed: a script
			// capturing stdout must not see partial output on error.
			return fmt.Errorf("-dist needs -lambda (per-processor rate)")
		}
	} else if *shape != 0 || *lambda != 0 {
		// A forgotten -dist must not silently skip the KS test the user
		// asked for with the other flags.
		return fmt.Errorf("-shape/-lambda need -dist")
	}
	if *in == "" {
		return fmt.Errorf("need -in")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := failures.ReadCSV(f)
	if err != nil {
		return err
	}
	inter := tr.InterArrivals()
	fmt.Printf("events: %d total, %d fail-stop, %d silent\n",
		len(tr.Events), tr.Count(failures.FailStop), tr.Count(failures.Silent))
	if len(inter) == 0 {
		return nil
	}
	var acc stats.Welford
	for _, x := range inter {
		acc.Add(x)
	}
	fmt.Printf("inter-arrival: mean %.6g s (observed rate %.6g /s), min %.3g, max %.3g\n",
		acc.Mean(), 1/acc.Mean(), acc.Min(), acc.Max())
	if *rate > 0 {
		res, err := stats.KSTestExponential(inter, *rate)
		if err != nil {
			return err
		}
		verdict := "consistent with"
		if res.Reject(0.01) {
			verdict = "REJECTED against"
		}
		fmt.Printf("KS test: D=%.4g, p=%.4g — %s Exp(%g)\n",
			res.Statistic, res.PValue, verdict, *rate)
	}
	if *dist != "" {
		d, err := failures.ParseDistribution(*dist, *shape, *lambda)
		if err != nil {
			return err
		}
		// Per-processor gaps are iid draws of the law for any renewal
		// trace; the merged stream only is in the exponential case.
		res, err := stats.KSTest(tr.ProcInterArrivals(), d.CDF)
		if err != nil {
			return err
		}
		verdict := "consistent with"
		if res.Reject(0.01) {
			verdict = "REJECTED against"
		}
		fmt.Printf("KS test (per-proc): D=%.4g, p=%.4g — %s %s\n",
			res.Statistic, res.PValue, verdict, d.Name())
	}
	return nil
}

func runReplay(args []string) error {
	fs := flag.NewFlagSet("amdahl-trace replay", flag.ContinueOnError)
	in := fs.String("in", "", "input CSV path (required)")
	platName := fs.String("platform", "hera", "platform (resilience costs)")
	scenario := fs.Int("scenario", 1, "resilience scenario 1-6")
	alpha := fs.Float64("alpha", 0.1, "sequential fraction α")
	downtime := fs.Float64("downtime", 3600, "downtime D (s)")
	period := fs.Float64("T", 0, "checkpointing period; 0 uses the Theorem 1 optimum")
	procs := fs.Float64("P", 0, "processor count; 0 uses the platform's deployed count")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("need -in")
	}
	pl, err := platform.Lookup(*platName)
	if err != nil {
		return err
	}
	sc := costmodel.Scenario(*scenario)
	if !sc.Valid() {
		return fmt.Errorf("scenario %d outside 1-6", *scenario)
	}
	m, err := experiments.BuildModel(pl, sc, *alpha, *downtime)
	if err != nil {
		return err
	}
	p := *procs
	if p == 0 {
		p = pl.Processors
	}
	t := *period
	if t == 0 {
		t = m.OptimalPeriodFixedP(p)
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := failures.ReadCSV(f)
	if err != nil {
		return err
	}
	res, err := sim.SimulateReplay(m, t, p, tr)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d patterns (T=%.4g s, P=%.4g) against %d trace events\n",
		res.Patterns, t, p, len(tr.Events))
	fmt.Printf("mean pattern time : %.6g s (exact formula %.6g s)\n",
		res.MeanPatternTime(), m.ExactPatternTime(t, p))
	fmt.Printf("execution overhead: %.6g (exact formula %.6g)\n",
		res.Overhead(t, m.Profile.Overhead(p)), m.Overhead(t, p))
	fmt.Printf("events applied    : %d fail-stop, %d silent detections, %d recoveries\n",
		res.FailStops, res.SilentDetections, res.Recoveries)
	return nil
}
