module amdahlyd

go 1.24
